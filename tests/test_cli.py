"""Tests for the command-line interfaces."""

import pytest

from repro.cli import build_parser, main as cli_main
from repro.experiments.runner import main as runner_main


class TestCli:
    def test_codes_listing(self, capsys):
        assert cli_main(["codes"]) == 0
        out = capsys.readouterr().out
        assert "surface_d3" in out and "lp39" in out

    def test_evaluate_runs(self, capsys):
        args = ["evaluate", "surface_d3", "--shots", "400", "--samples", "6"]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "LER" in out

    def test_evaluate_rare_event_runs(self, capsys):
        args = [
            "evaluate",
            "surface_d3",
            "--rare-event",
            "--p",
            "3e-3",
            "--shots",
            "8000",
            "--samples",
            "5",
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "stratified z-basis LER" in out
        assert "combined LER" in out
        assert "direct MC would need" in out

    def test_optimize_runs(self, capsys):
        args = [
            "optimize",
            "surface_d3",
            "--iterations",
            "1",
            "--samples",
            "6",
            "--shots",
            "400",
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "improvement" in out or "->" in out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bad_noise_token_exits_cleanly(self):
        with pytest.raises(SystemExit, match="bad --noise spec"):
            cli_main(["evaluate", "surface_d3", "--noise", "biased-10"])


class TestRunnerCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner_main(["not-an-experiment"])

    def test_table1_runs(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestCampaignCli:
    def test_smoke_run_and_resume_check(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["campaign", "run", "--smoke", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 executed" in out
        assert "resume check: 4 store hits, 0 recomputed" in out

    def test_spec_file_run_status_export(self, tmp_path, capsys):
        import json

        from repro.experiments.campaign import smoke_spec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(smoke_spec().to_dict()))
        store = str(tmp_path / "store")

        assert cli_main(["campaign", "run", str(spec_path), "--store", store]) == 0
        capsys.readouterr()

        assert (
            cli_main(["campaign", "status", str(spec_path), "--store", store]) == 0
        )
        assert "4/4 jobs complete" in capsys.readouterr().out

        assert cli_main(["campaign", "status", "--store", store]) == 0
        assert "4 records" in capsys.readouterr().out

        out_file = tmp_path / "rows.json"
        assert (
            cli_main(
                [
                    "campaign",
                    "export",
                    str(spec_path),
                    "--store",
                    store,
                    "--format",
                    "json",
                    "--output",
                    str(out_file),
                ]
            )
            == 0
        )
        rows = json.loads(out_file.read_text())
        assert len(rows) == 4
        assert {r["estimator"] for r in rows} == {"direct", "rare-event"}

    def test_telemetry_commands_end_to_end(self, tmp_path, capsys):
        import json

        from repro import obs

        store = str(tmp_path / "store")
        with obs.enabled_to(True):
            assert cli_main(["campaign", "run", "--smoke", "--store", store]) == 0
        capsys.readouterr()

        assert (
            cli_main(["campaign", "status", "--store", store, "--telemetry"])
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry sidecars:" in out
        assert "job" in out and "share" in out
        assert "store: 4 appends" in out

        assert cli_main(["campaign", "top", "--store", store]) == 0
        out = capsys.readouterr().out
        # run_campaign is not a fleet: no heartbeats, just the hint.
        assert "heartbeats" in out

        trace_path = tmp_path / "trace.json"
        assert (
            cli_main(
                [
                    "campaign",
                    "trace",
                    "--store",
                    store,
                    "--output",
                    str(trace_path),
                ]
            )
            == 0
        )
        doc = json.loads(trace_path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_trace_of_uninstrumented_store_fails_unless_allowed(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert cli_main(["campaign", "run", "--smoke", "--store", store]) == 0
        capsys.readouterr()
        out_path = str(tmp_path / "trace.json")
        args = ["campaign", "trace", "--store", store, "--output", out_path]
        assert cli_main(args) == 1
        assert cli_main(args + ["--allow-empty"]) == 0

    def test_biased_noise_campaign_end_to_end_with_byte_identical_resume(
        self, tmp_path, capsys
    ):
        """Acceptance: an (eta x p) biased-noise grid runs through
        ``campaign run``, and losing a store suffix then resuming
        rebuilds the exact bytes an uninterrupted run produced."""
        import json

        spec_path = tmp_path / "bias.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "bias-sweep",
                    "codes": ["surface_d3"],
                    "schedules": ["nz"],
                    "p_values": [4e-3, 8e-3],
                    "bases": ["z"],
                    "noises": ["biased:0.5", "biased:10", "biased:100"],
                    "shots": 192,
                    "chunk_size": 64,
                    "seed": 0,
                }
            )
        )
        store = tmp_path / "store"
        assert cli_main(["campaign", "run", str(spec_path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "6 jobs, 0 store hits, 6 executed" in out
        assert "noise=biased:10" in out

        results = store / "results.jsonl"

        def records_sans_timing():
            rows = []
            for line in results.read_text().splitlines():
                record = json.loads(line)
                record.pop("meta", None)  # wall clock / worker provenance
                rows.append(json.dumps(record, sort_keys=True))
            return rows

        full = records_sans_timing()
        # Interrupt: lose the last two records, then resume.
        lines = results.read_text().splitlines(keepends=True)
        results.write_text("".join(lines[:-2]))
        assert cli_main(["campaign", "run", str(spec_path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "4 store hits, 2 executed" in out
        assert records_sans_timing() == full

        out_file = tmp_path / "rows.json"
        assert (
            cli_main(
                [
                    "campaign",
                    "export",
                    str(spec_path),
                    "--store",
                    str(store),
                    "--format",
                    "json",
                    "--output",
                    str(out_file),
                ]
            )
            == 0
        )
        rows = json.loads(out_file.read_text())
        assert {r["noise"] for r in rows} == {
            "biased:0.5",
            "biased:10",
            "biased:100",
        }

    def test_run_without_spec_or_smoke_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "run", "--store", str(tmp_path / "s")])

    def test_bad_noise_token_in_spec_file_exits_cleanly(self, tmp_path):
        import json

        spec_path = tmp_path / "typo.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "typo",
                    "codes": ["surface_d3"],
                    "p_values": [1e-3],
                    "noises": ["biased-10"],
                }
            )
        )
        with pytest.raises(SystemExit, match="bad campaign spec"):
            cli_main(
                [
                    "campaign",
                    "run",
                    str(spec_path),
                    "--store",
                    str(tmp_path / "s"),
                ]
            )
        # Non-string noise entries (TypeError) and incomplete inline
        # channel payloads (bare KeyError) get the same clean exit.
        # A misspelled top-level spec field and malformed JSON exit
        # cleanly too.
        spec_path.write_text('{"name": "x", "codes": [], "noise": ["nz"]}')
        with pytest.raises(SystemExit, match="bad campaign spec"):
            cli_main(
                ["campaign", "run", str(spec_path), "--store", str(tmp_path / "s")]
            )
        spec_path.write_text("{not json")
        with pytest.raises(SystemExit, match="bad campaign spec"):
            cli_main(
                ["campaign", "run", str(spec_path), "--store", str(tmp_path / "s")]
            )
        incomplete = {"format": "noise-spec-v1", "sq": {"kind": "depolarizing"}}
        for bad_noises in ([0.5], [incomplete]):
            spec_path.write_text(
                json.dumps(
                    {
                        "name": "typo",
                        "codes": ["surface_d3"],
                        "p_values": [1e-3],
                        "noises": bad_noises,
                    }
                )
            )
            with pytest.raises(SystemExit, match="bad campaign spec"):
                cli_main(
                    [
                        "campaign",
                        "run",
                        str(spec_path),
                        "--store",
                        str(tmp_path / "s"),
                    ]
                )

    def test_export_csv_to_stdout(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert cli_main(["campaign", "run", "--smoke", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "export", "--store", store]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("key,code,schedule")


class TestScheduleOutput:
    def test_optimize_writes_schedule(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        args = [
            "optimize",
            "surface_d3",
            "--iterations",
            "1",
            "--samples",
            "5",
            "--shots",
            "200",
            "--output",
            str(out),
        ]
        assert cli_main(args) == 0
        from repro.circuits import schedule_from_json
        from repro.codes import rotated_surface_code

        schedule = schedule_from_json(out.read_text(), rotated_surface_code(3))
        assert schedule.is_valid()
