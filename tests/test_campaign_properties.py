"""Property tests: every noise-scenario knob must reach the job key.

The ROADMAP failure mode these guard: "new result-affecting knobs MUST
go into ``CampaignJob.to_payload`` or they silently alias cache
entries".  With the pluggable :class:`~repro.noise.NoiseSpec`, the knob
surface is now open-ended — so the guard is a property, not a list:
perturbing *any single field* of a spec riding a job (channel kind,
channel rate, bias eta, readout flip, idle strength) must change
``CampaignJob.job_key``.  Run under the ``ci`` hypothesis profile
(derandomized, more examples) in the dedicated CI litmus job.
"""

import dataclasses
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import CampaignJob
from repro.experiments.store import ResultStore
from repro.noise import (
    PROFILE_GATE_CLASSES,
    BiasedPauliChannel,
    CorrelatedPauliChannel,
    DepolarizingChannel,
    DeviceProfile,
    DriftSchedule,
    NoiseSpec,
    noise_display,
    resolve_noise,
)

# -- strategies --------------------------------------------------------------

probs = st.floats(1e-6, 0.2, allow_nan=False, allow_infinity=False)
etas = st.floats(0.01, 1000.0, allow_nan=False, allow_infinity=False)
multipliers = st.floats(0.1, 3.0, allow_nan=False, allow_infinity=False)

channels = st.one_of(
    st.none(),
    st.builds(DepolarizingChannel, p=probs),
    st.builds(BiasedPauliChannel, p=probs, eta=etas),
)

# The CNOT slot additionally admits the genuinely correlated channel
# (ARITY=2 — it cannot ride the single-qubit slots).
cnot_channels = st.one_of(
    channels,
    st.builds(
        CorrelatedPauliChannel.depolarizing, st.floats(1e-6, 0.2, allow_nan=False)
    ),
)

profiles = st.one_of(
    st.none(),
    st.builds(
        DeviceProfile,
        qubits=st.dictionaries(st.integers(0, 8), multipliers, max_size=4),
        gates=st.dictionaries(
            st.sampled_from(PROFILE_GATE_CLASSES), multipliers, max_size=3
        ),
        default=multipliers,
    ),
)

drifts = st.one_of(
    st.none(),
    st.builds(
        DriftSchedule,
        multipliers=st.lists(multipliers, min_size=1, max_size=5).map(tuple),
        mode=st.sampled_from(["hold", "cycle"]),
    ),
)

specs = st.builds(
    NoiseSpec,
    sq=channels,
    cnot=cnot_channels,
    meas=channels,
    readout=st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False),
    idle_strength=st.floats(0.0, 0.1, allow_nan=False, allow_infinity=False),
    crosstalk=st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False),
    profile=profiles,
    drift=drifts,
)


def _alt(value: float, a: float, b: float) -> float:
    """A float guaranteed different from ``value``."""
    return a if value != a else b


def _perturb_channel(channel):
    """Change exactly one aspect of a channel slot."""
    if channel is None:
        return DepolarizingChannel(p=0.0123)
    if isinstance(channel, DepolarizingChannel):
        return DepolarizingChannel(p=_alt(channel.p, 0.017, 0.019))
    if isinstance(channel, CorrelatedPauliChannel):
        probs = list(channel.probs)
        probs[4] = _alt(probs[4], 0.011, 0.013)  # the XX entry
        return CorrelatedPauliChannel(probs=tuple(probs))
    return BiasedPauliChannel(p=channel.p, eta=_alt(channel.eta, 7.0, 13.0))


def _perturb_profile(profile):
    """Change one calibration entry (non-uniform, so it survives the
    spec's no-op normalization)."""
    if profile is None:
        return DeviceProfile(qubits={0: 1.7})
    return DeviceProfile(
        qubits={**profile.qubits, 0: _alt(profile.qubit_scale(0), 1.9, 2.3)},
        gates=profile.gates,
        default=profile.default,
    )


def _perturb_drift(drift):
    if drift is None:
        return DriftSchedule(multipliers=(1.0, 1.3))
    first = _alt(drift.multipliers[0], 1.7, 2.1)
    return DriftSchedule(
        multipliers=(first,) + drift.multipliers[1:], mode=drift.mode
    )


_FIELD_PERTURBATIONS = {
    "sq": _perturb_channel,
    "cnot": _perturb_channel,
    "meas": _perturb_channel,
    "readout": lambda v: _alt(v, 0.031, 0.057),
    "idle_strength": lambda v: _alt(v, 0.021, 0.043),
    "crosstalk": lambda v: _alt(v, 0.013, 0.027),
    "profile": _perturb_profile,
    "drift": _perturb_drift,
}

# Perturbing the channel *kind* at equal parameters must also change the
# key — "same p, different physics" is the nastiest aliasing case.
_KIND_SWAPS = [
    (DepolarizingChannel(p=0.01), BiasedPauliChannel(p=0.01, eta=0.5)),
]


def _job_with(spec: NoiseSpec) -> CampaignJob:
    return CampaignJob(
        code="surface_d3", schedule="nz", p=1e-3, noise=spec.to_payload()
    )


class TestNoiseSpecReachesJobKey:
    @settings(deadline=None)
    @given(spec=specs, field=st.sampled_from(sorted(_FIELD_PERTURBATIONS)))
    def test_perturbing_any_spec_field_changes_key(self, spec, field):
        perturbed = dataclasses.replace(
            spec, **{field: _FIELD_PERTURBATIONS[field](getattr(spec, field))}
        )
        assert _job_with(perturbed).key() != _job_with(spec).key()

    @settings(deadline=None)
    @given(spec=specs, slot=st.sampled_from(("sq", "cnot", "meas")))
    def test_channel_kind_swap_changes_key(self, spec, slot):
        for a, b in _KIND_SWAPS:
            with_a = dataclasses.replace(spec, **{slot: a})
            with_b = dataclasses.replace(spec, **{slot: b})
            assert _job_with(with_a).key() != _job_with(with_b).key()

    def test_correlated_kind_swap_changes_key(self):
        """Uniform-split correlated noise is *marginally* identical to
        depolarizing — the lowering difference must still reach the key."""
        dep = NoiseSpec(cnot=DepolarizingChannel(p=0.01))
        cor = NoiseSpec(cnot=CorrelatedPauliChannel.depolarizing(0.01))
        assert _job_with(dep).key() != _job_with(cor).key()

    @settings(deadline=None)
    @given(idx=st.integers(0, 14))
    def test_each_correlated_pair_prob_reaches_key(self, idx):
        base = CorrelatedPauliChannel.depolarizing(0.015)
        probs = list(base.probs)
        probs[idx] += 1e-4
        a = NoiseSpec(cnot=base)
        b = NoiseSpec(cnot=CorrelatedPauliChannel(probs=tuple(probs)))
        assert _job_with(a).key() != _job_with(b).key()

    @settings(deadline=None)
    @given(q=st.integers(0, 5))
    def test_each_profile_qubit_entry_reaches_key(self, q):
        base = NoiseSpec.depolarizing(0.01, profile=DeviceProfile(qubits={9: 1.5}))
        bumped = NoiseSpec.depolarizing(
            0.01, profile=DeviceProfile(qubits={9: 1.5, q: 1.2})
        )
        assert _job_with(base).key() != _job_with(bumped).key()

    @settings(deadline=None)
    @given(gate_class=st.sampled_from(PROFILE_GATE_CLASSES))
    def test_each_profile_gate_entry_reaches_key(self, gate_class):
        base = NoiseSpec.depolarizing(0.01, profile=DeviceProfile(qubits={0: 1.5}))
        bumped = NoiseSpec.depolarizing(
            0.01,
            profile=DeviceProfile(qubits={0: 1.5}, gates={gate_class: 1.2}),
        )
        assert _job_with(base).key() != _job_with(bumped).key()

    @settings(deadline=None)
    @given(idx=st.integers(0, 3))
    def test_each_drift_multiplier_reaches_key(self, idx):
        base = DriftSchedule(multipliers=(1.1, 1.2, 1.3, 1.4))
        bumped = tuple(
            m + (0.05 if i == idx else 0.0) for i, m in enumerate(base.multipliers)
        )
        a = NoiseSpec.depolarizing(0.01, drift=base)
        b = NoiseSpec.depolarizing(0.01, drift=DriftSchedule(multipliers=bumped))
        assert _job_with(a).key() != _job_with(b).key()

    def test_drift_mode_reaches_key(self):
        hold = NoiseSpec.depolarizing(0.01, drift=DriftSchedule((1.0, 2.0)))
        cycle = NoiseSpec.depolarizing(
            0.01, drift=DriftSchedule((1.0, 2.0), mode="cycle")
        )
        assert _job_with(hold).key() != _job_with(cycle).key()

    def test_uniform_profile_and_drift_are_key_noops(self):
        """The converse guarantee: physically identical scenarios (all
        multipliers exactly 1) content-address identically."""
        bare = NoiseSpec.depolarizing(0.01)
        dressed = NoiseSpec.depolarizing(
            0.01,
            profile=DeviceProfile(qubits={0: 1.0}, default=1.0),
            drift=DriftSchedule((1.0, 1.0)),
        )
        assert _job_with(bare).key() == _job_with(dressed).key()

    @settings(deadline=None)
    @given(spec=specs)
    def test_payload_roundtrip_is_lossless(self, spec):
        rebuilt = NoiseSpec.from_payload(spec.to_payload())
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()
        assert _job_with(rebuilt).key() == _job_with(spec).key()

    @settings(deadline=None)
    @given(spec=specs)
    def test_spec_key_matches_job_key_discrimination(self, spec):
        """Two specs collide in a job key iff their own keys collide."""
        other = dataclasses.replace(spec, readout=_alt(spec.readout, 0.061, 0.087))
        assert (spec.key() == other.key()) == (
            _job_with(spec).key() == _job_with(other).key()
        )


class TestNoiseTokens:
    @settings(deadline=None)
    @given(
        eta=st.floats(0.1, 500.0, allow_nan=False),
        p=st.floats(1e-5, 0.05, allow_nan=False),
    )
    def test_token_resolution_is_deterministic(self, eta, p):
        token = f"biased:{eta:g}"
        assert resolve_noise(token, p) == resolve_noise(token, p)
        assert resolve_noise(token, p).key() == resolve_noise(token, p).key()

    @settings(deadline=None)
    @given(p=st.floats(1e-4, 0.05, allow_nan=False))
    def test_relative_readout_clause_scales_with_p(self, p):
        spec = resolve_noise("depolarizing,pm=2p", p)
        assert spec.readout == 2 * p
        absolute = resolve_noise("depolarizing,pm=0.004", p)
        assert absolute.readout == 0.004
        # A bare pm= token defaults the gate family to depolarizing.
        assert resolve_noise("pm=2p", p) == spec
        assert resolve_noise("pm=0.004", p) == absolute

    def test_spec_instance_coerced_to_hashable_payload(self):
        """Passing a NoiseSpec object (not its payload) must still give
        a JSON-hashable job, identical to the payload-built one."""
        spec = NoiseSpec.biased(1e-3, eta=10.0)
        via_object = CampaignJob(
            code="surface_d3", schedule="nz", p=1e-3, noise=spec
        )
        assert via_object.noise == spec.to_payload()
        assert via_object.key() == _job_with(spec).key()

    def test_distinct_tokens_distinct_job_keys(self):
        jobs = [
            CampaignJob(code="surface_d3", schedule="nz", p=1e-3, noise=t)
            for t in (
                None,
                "depolarizing",
                "biased:0.5",
                "biased:10",
                "biased:10,pm=0.003",
                "biased:10,pm=3p",
                "correlated",
                "correlated,ct=2p",
                "depolarizing,ct=0.003",
                "pm=0.003,ct=0.003",
            )
        ]
        keys = {j.key() for j in jobs}
        assert len(keys) == len(jobs)

    def test_display_forms(self):
        assert noise_display(None) == "depolarizing"
        assert noise_display("biased:10") == "biased:10"
        inline = NoiseSpec.biased(1e-3, 10.0).to_payload()
        assert noise_display(inline).startswith("inline:")


# -- telemetry meta envelope hygiene -----------------------------------------
#
# The PR-8 observability layer rides the record ``meta`` envelope
# (elapsed_s, worker identity, ...).  The contract that keeps it safe:
# *no* meta content — whatever keys future instrumentation invents —
# may reach the job key or the store's content digest.  Property, not
# list: an arbitrary JSON-ish meta dict must be digest-invisible.

meta_values = st.one_of(
    st.integers(-(10**6), 10**6),
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
meta_dicts = st.dictionaries(
    st.text(min_size=1, max_size=16), meta_values, max_size=6
)


class TestMetaEnvelopeHygiene:
    @settings(deadline=None, max_examples=50)
    @given(spec=specs, meta=meta_dicts)
    def test_meta_never_reaches_key_or_digest(self, spec, meta):
        job = _job_with(spec)
        bare, carrying = ResultStore(None), ResultStore(None)
        bare.put(job.key(), job.to_payload(), {"failures": 1})
        carrying.put(
            job.key(), job.to_payload(), {"failures": 1}, meta=meta
        )
        assert job.key() == _job_with(spec).key()  # meta can't perturb keys
        assert bare.content_digest() == carrying.content_digest()

    def test_compact_strips_telemetry_meta_from_disk(self, tmp_path):
        job = _job_with(NoiseSpec.biased(1e-3, eta=10.0))
        store = ResultStore(tmp_path / "s")
        store.put(
            job.key(),
            job.to_payload(),
            {"failures": 0},
            meta={"elapsed_s": 1.23, "worker": "w0", "spans": 4},
        )
        store.compact()
        on_disk = b"".join(
            (tmp_path / "s" / name).read_bytes()
            for name in sorted(os.listdir(tmp_path / "s"))
            if name.endswith(".jsonl")
        )
        assert b"elapsed_s" not in on_disk
        assert b'"meta"' not in on_disk
        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.get(job.key())["result"] == {"failures": 0}
        assert reloaded.content_digest() == store.content_digest()
