"""Property tests: every noise-scenario knob must reach the job key.

The ROADMAP failure mode these guard: "new result-affecting knobs MUST
go into ``CampaignJob.to_payload`` or they silently alias cache
entries".  With the pluggable :class:`~repro.noise.NoiseSpec`, the knob
surface is now open-ended — so the guard is a property, not a list:
perturbing *any single field* of a spec riding a job (channel kind,
channel rate, bias eta, readout flip, idle strength) must change
``CampaignJob.job_key``.  Run under the ``ci`` hypothesis profile
(derandomized, more examples) in the dedicated CI litmus job.
"""

import dataclasses
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import CampaignJob
from repro.experiments.store import ResultStore
from repro.noise import (
    BiasedPauliChannel,
    DepolarizingChannel,
    NoiseSpec,
    noise_display,
    resolve_noise,
)

# -- strategies --------------------------------------------------------------

probs = st.floats(1e-6, 0.2, allow_nan=False, allow_infinity=False)
etas = st.floats(0.01, 1000.0, allow_nan=False, allow_infinity=False)

channels = st.one_of(
    st.none(),
    st.builds(DepolarizingChannel, p=probs),
    st.builds(BiasedPauliChannel, p=probs, eta=etas),
)

specs = st.builds(
    NoiseSpec,
    sq=channels,
    cnot=channels,
    meas=channels,
    readout=st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False),
    idle_strength=st.floats(0.0, 0.1, allow_nan=False, allow_infinity=False),
)


def _alt(value: float, a: float, b: float) -> float:
    """A float guaranteed different from ``value``."""
    return a if value != a else b


def _perturb_channel(channel):
    """Change exactly one aspect of a channel slot."""
    if channel is None:
        return DepolarizingChannel(p=0.0123)
    if isinstance(channel, DepolarizingChannel):
        return DepolarizingChannel(p=_alt(channel.p, 0.017, 0.019))
    return BiasedPauliChannel(p=channel.p, eta=_alt(channel.eta, 7.0, 13.0))


_FIELD_PERTURBATIONS = {
    "sq": _perturb_channel,
    "cnot": _perturb_channel,
    "meas": _perturb_channel,
    "readout": lambda v: _alt(v, 0.031, 0.057),
    "idle_strength": lambda v: _alt(v, 0.021, 0.043),
}

# Perturbing the channel *kind* at equal parameters must also change the
# key — "same p, different physics" is the nastiest aliasing case.
_KIND_SWAPS = [
    (DepolarizingChannel(p=0.01), BiasedPauliChannel(p=0.01, eta=0.5)),
]


def _job_with(spec: NoiseSpec) -> CampaignJob:
    return CampaignJob(
        code="surface_d3", schedule="nz", p=1e-3, noise=spec.to_payload()
    )


class TestNoiseSpecReachesJobKey:
    @settings(deadline=None)
    @given(spec=specs, field=st.sampled_from(sorted(_FIELD_PERTURBATIONS)))
    def test_perturbing_any_spec_field_changes_key(self, spec, field):
        perturbed = dataclasses.replace(
            spec, **{field: _FIELD_PERTURBATIONS[field](getattr(spec, field))}
        )
        assert _job_with(perturbed).key() != _job_with(spec).key()

    @settings(deadline=None)
    @given(spec=specs, slot=st.sampled_from(("sq", "cnot", "meas")))
    def test_channel_kind_swap_changes_key(self, spec, slot):
        for a, b in _KIND_SWAPS:
            with_a = dataclasses.replace(spec, **{slot: a})
            with_b = dataclasses.replace(spec, **{slot: b})
            assert _job_with(with_a).key() != _job_with(with_b).key()

    @settings(deadline=None)
    @given(spec=specs)
    def test_payload_roundtrip_is_lossless(self, spec):
        rebuilt = NoiseSpec.from_payload(spec.to_payload())
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()
        assert _job_with(rebuilt).key() == _job_with(spec).key()

    @settings(deadline=None)
    @given(spec=specs)
    def test_spec_key_matches_job_key_discrimination(self, spec):
        """Two specs collide in a job key iff their own keys collide."""
        other = dataclasses.replace(spec, readout=_alt(spec.readout, 0.061, 0.087))
        assert (spec.key() == other.key()) == (
            _job_with(spec).key() == _job_with(other).key()
        )


class TestNoiseTokens:
    @settings(deadline=None)
    @given(
        eta=st.floats(0.1, 500.0, allow_nan=False),
        p=st.floats(1e-5, 0.05, allow_nan=False),
    )
    def test_token_resolution_is_deterministic(self, eta, p):
        token = f"biased:{eta:g}"
        assert resolve_noise(token, p) == resolve_noise(token, p)
        assert resolve_noise(token, p).key() == resolve_noise(token, p).key()

    @settings(deadline=None)
    @given(p=st.floats(1e-4, 0.05, allow_nan=False))
    def test_relative_readout_clause_scales_with_p(self, p):
        spec = resolve_noise("depolarizing,pm=2p", p)
        assert spec.readout == 2 * p
        absolute = resolve_noise("depolarizing,pm=0.004", p)
        assert absolute.readout == 0.004
        # A bare pm= token defaults the gate family to depolarizing.
        assert resolve_noise("pm=2p", p) == spec
        assert resolve_noise("pm=0.004", p) == absolute

    def test_spec_instance_coerced_to_hashable_payload(self):
        """Passing a NoiseSpec object (not its payload) must still give
        a JSON-hashable job, identical to the payload-built one."""
        spec = NoiseSpec.biased(1e-3, eta=10.0)
        via_object = CampaignJob(
            code="surface_d3", schedule="nz", p=1e-3, noise=spec
        )
        assert via_object.noise == spec.to_payload()
        assert via_object.key() == _job_with(spec).key()

    def test_distinct_tokens_distinct_job_keys(self):
        jobs = [
            CampaignJob(code="surface_d3", schedule="nz", p=1e-3, noise=t)
            for t in (
                None,
                "depolarizing",
                "biased:0.5",
                "biased:10",
                "biased:10,pm=0.003",
                "biased:10,pm=3p",
            )
        ]
        keys = {j.key() for j in jobs}
        assert len(keys) == len(jobs)

    def test_display_forms(self):
        assert noise_display(None) == "depolarizing"
        assert noise_display("biased:10") == "biased:10"
        inline = NoiseSpec.biased(1e-3, 10.0).to_payload()
        assert noise_display(inline).startswith("inline:")


# -- telemetry meta envelope hygiene -----------------------------------------
#
# The PR-8 observability layer rides the record ``meta`` envelope
# (elapsed_s, worker identity, ...).  The contract that keeps it safe:
# *no* meta content — whatever keys future instrumentation invents —
# may reach the job key or the store's content digest.  Property, not
# list: an arbitrary JSON-ish meta dict must be digest-invisible.

meta_values = st.one_of(
    st.integers(-(10**6), 10**6),
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
meta_dicts = st.dictionaries(
    st.text(min_size=1, max_size=16), meta_values, max_size=6
)


class TestMetaEnvelopeHygiene:
    @settings(deadline=None, max_examples=50)
    @given(spec=specs, meta=meta_dicts)
    def test_meta_never_reaches_key_or_digest(self, spec, meta):
        job = _job_with(spec)
        bare, carrying = ResultStore(None), ResultStore(None)
        bare.put(job.key(), job.to_payload(), {"failures": 1})
        carrying.put(
            job.key(), job.to_payload(), {"failures": 1}, meta=meta
        )
        assert job.key() == _job_with(spec).key()  # meta can't perturb keys
        assert bare.content_digest() == carrying.content_digest()

    def test_compact_strips_telemetry_meta_from_disk(self, tmp_path):
        job = _job_with(NoiseSpec.biased(1e-3, eta=10.0))
        store = ResultStore(tmp_path / "s")
        store.put(
            job.key(),
            job.to_payload(),
            {"failures": 0},
            meta={"elapsed_s": 1.23, "worker": "w0", "spans": 4},
        )
        store.compact()
        on_disk = b"".join(
            (tmp_path / "s" / name).read_bytes()
            for name in sorted(os.listdir(tmp_path / "s"))
            if name.endswith(".jsonl")
        )
        assert b"elapsed_s" not in on_disk
        assert b'"meta"' not in on_disk
        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.get(job.key())["result"] == {"failures": 0}
        assert reloaded.content_digest() == store.content_digest()
