"""Tests for ``repro.obs``: metrics, spans, heartbeats, dashboards.

The two contracts everything else leans on:

1. **Byte-identity** — an instrumented run produces a store whose
   ``content_digest()`` (and compacted bytes) equal an uninstrumented
   run's.  Telemetry lives in sidecar files and the volatile ``meta``
   envelope only.
2. **Off means free and silent** — with ``REPRO_OBS`` off (the
   default), instruments don't count, spans are the shared
   :data:`NULL_SPAN`, and no sidecar file is ever created.
"""

import io
import json
import os
import threading

import pytest

from repro import obs
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.service import serve_campaign
from repro.experiments.store import ResultStore
from repro.obs import dashboard
from repro.obs.log import Logger
from repro.obs.metrics import (
    BIN_EDGES,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import aggregate_stages, chrome_trace, fold_latest_snapshot


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts from the default (off, no dir) switchboard."""
    prev = (obs.state.enabled, obs.state.telemetry_dir)
    obs.registry.reset()
    yield
    obs.state.enabled, obs.state.telemetry_dir = prev
    obs.registry.reset()


def tiny_spec(seed: int = 0) -> CampaignSpec:
    return CampaignSpec(
        name="tiny",
        codes=("surface_d3",),
        schedules=("nz",),
        p_values=(2e-3, 3e-3),
        bases=("z",),
        shots=192,
        chunk_size=96,
        seed=seed,
    )


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_instruments_are_noops_when_off(self):
        reg = MetricsRegistry()
        reg.counter("c").add(5)
        reg.gauge("g").set(3.0)
        reg.histogram("h").record(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["gauges"]["g"] == 0.0
        assert snap["histograms"]["h"]["count"] == 0

    def test_instruments_count_when_enabled(self):
        reg = MetricsRegistry()
        with obs.enabled_to(True):
            reg.counter("c").add()
            reg.counter("c").add(4)
            reg.gauge("g").set(7)
            reg.histogram("h").record(0.25)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_instruments_are_cached_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")

    def test_reset_keeps_instruments_registered(self):
        reg = MetricsRegistry()
        handle = reg.counter("kept")
        with obs.enabled_to(True):
            handle.add(3)
        reg.reset()
        assert reg.counter("kept") is handle
        assert handle.value == 0

    def test_histogram_rejects_negative_and_nan(self):
        hist = Histogram("h")
        with obs.enabled_to(True):
            hist.record(-1.0)
            hist.record(float("nan"))
        assert hist.count == 0

    @pytest.mark.parametrize(
        "value", [5e-7, 1e-6, 1.1e-6, 3e-6, 1e-3, 0.7, 12.0, 1e4]
    )
    def test_percentile_upper_edge_bounds_value(self, value):
        """p100 of a single sample is its bin's upper edge: >= the value
        and within one bin ratio (2x) above it."""
        hist = Histogram("h")
        with obs.enabled_to(True):
            hist.record(value)
        p = hist.percentile(1.0)
        assert p >= min(value, hist.max)
        if BIN_EDGES[0] < value <= BIN_EDGES[-1]:
            assert p <= 2 * value

    def test_percentiles_from_bins(self):
        hist = Histogram("h")
        with obs.enabled_to(True):
            for _ in range(99):
                hist.record(1e-3)
            hist.record(1.0)
        assert hist.percentile(0.5) == pytest.approx(
            next(e for e in BIN_EDGES if e >= 1e-3)
        )
        assert hist.percentile(0.99) == pytest.approx(
            next(e for e in BIN_EDGES if e >= 1e-3)
        )
        assert hist.percentile(1.0) >= 1.0

    def test_merge_snapshots_sums_and_recomputes(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        with obs.enabled_to(True):
            reg_a.counter("jobs").add(2)
            reg_b.counter("jobs").add(3)
            reg_a.histogram("t").record(1e-3)
            reg_b.histogram("t").record(2.0)
            reg_b.gauge("depth").set(9)
        merged = merge_snapshots([reg_a.snapshot(), reg_b.snapshot()])
        assert merged["counters"]["jobs"] == 5
        hist = merged["histograms"]["t"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(2.001)
        assert hist["min"] == pytest.approx(1e-3)
        assert hist["max"] == pytest.approx(2.0)
        assert merged["gauges"]["depth"] == 9.0

    def test_merge_skips_garbage(self):
        merged = merge_snapshots([None, 42, {"histograms": {"h": "nope"}}])
        assert merged["counters"] == {}
        assert merged["histograms"] == {}

    # -- empty-histogram min: snapshots must stay strict JSON ---------------
    #
    # An empty histogram's running min is +inf; json.dumps emits that as
    # the non-standard token ``Infinity``, which strict parsers (and the
    # telemetry sidecar readers) reject.  Empty min snapshots as null.

    @staticmethod
    def _strict_loads(text: str):
        def _reject(token):
            raise AssertionError(f"non-standard JSON token {token!r}")

        return json.loads(text, parse_constant=_reject)

    def test_empty_histogram_snapshot_is_strict_json(self):
        reg = MetricsRegistry()
        reg.histogram("h")  # registered, never recorded
        snap = self._strict_loads(json.dumps(reg.snapshot()))
        assert snap["histograms"]["h"]["count"] == 0
        assert snap["histograms"]["h"]["min"] is None

    def test_merge_with_empty_snapshot_keeps_real_min(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        with obs.enabled_to(True):
            reg_a.histogram("t").record(1e-3)
        reg_b.histogram("t")  # empty on this registry
        for order in ([reg_a, reg_b], [reg_b, reg_a]):
            merged = merge_snapshots([r.snapshot() for r in order])
            hist = merged["histograms"]["t"]
            assert hist["count"] == 1
            assert hist["min"] == pytest.approx(1e-3)

    def test_merge_of_empty_snapshots_round_trips(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        merged = merge_snapshots([reg.snapshot(), reg.snapshot()])
        snap = self._strict_loads(json.dumps(merged))
        assert snap["histograms"]["h"]["min"] is None

    def test_merge_tolerates_minless_nonempty_snapshot(self):
        # Older sidecar files carry count > 0 histograms without a min
        # (or with min: null); merging them must not leak inf or crash.
        legacy = {"histograms": {"t": {"count": 2, "sum": 3.0, "max": 2.0}}}
        nulled = {
            "histograms": {"t": {"count": 1, "sum": 0.5, "min": None, "max": 0.5}}
        }
        merged = merge_snapshots([legacy, nulled])
        snap = self._strict_loads(json.dumps(merged))
        hist = snap["histograms"]["t"]
        assert hist["count"] == 3
        assert hist["min"] is None
        assert hist["max"] == pytest.approx(2.0)

    def test_facade_uses_default_registry(self):
        with obs.enabled_to(True):
            obs.counter("facade.test").add(2)
        assert obs.snapshot()["counters"]["facade.test"] == 2


class TestFoldLatestSnapshot:
    def test_same_process_keeps_newest_only(self):
        latest = {}
        rec = {"host": "h", "pid": 1}
        fold_latest_snapshot(latest, {**rec, "ts": 1.0}, {"counters": {"x": 5}})
        fold_latest_snapshot(latest, {**rec, "ts": 2.0}, {"counters": {"x": 9}})
        fold_latest_snapshot(latest, {**rec, "ts": 1.5}, {"counters": {"x": 7}})
        assert len(latest) == 1
        assert latest[("h", 1)][1]["counters"]["x"] == 9

    def test_distinct_processes_both_kept(self):
        latest = {}
        fold_latest_snapshot(
            latest, {"host": "h", "pid": 1, "ts": 1.0}, {"counters": {"x": 5}}
        )
        fold_latest_snapshot(
            latest, {"host": "h", "pid": 2, "ts": 1.0}, {"counters": {"x": 3}}
        )
        merged = merge_snapshots(s for _, s in latest.values())
        assert merged["counters"]["x"] == 8

    def test_aggregate_does_not_double_count_shared_registry(self):
        """Two worker threads of one process emit cumulative snapshots
        of the same registry; the fleet total is the newest, not the
        sum."""
        shared = {"host": "h", "pid": 42}
        records = [
            {"kind": "metrics", "worker": "w0", "ts": 10.0, **shared,
             "metrics": {"counters": {"store.appends": 4}}},
            {"kind": "metrics", "worker": "w1", "ts": 10.1, **shared,
             "metrics": {"counters": {"store.appends": 4}}},
            {"kind": "metrics", "worker": "remote", "host": "h2", "pid": 7,
             "ts": 10.2, "metrics": {"counters": {"store.appends": 2}}},
        ]
        agg = aggregate_stages(records)
        assert agg["metrics"]["counters"]["store.appends"] == 6


# -- spans -------------------------------------------------------------------


class TestSpans:
    def test_off_yields_null_span_and_no_files(self, tmp_path):
        with obs.span("decode", job="x") as sp:
            sp.set(shots=1)
        assert sp is obs.NULL_SPAN
        assert list(tmp_path.iterdir()) == []

    def test_enabled_without_dir_is_still_null(self):
        with obs.enabled_to(True):
            with obs.span("decode") as sp:
                pass
        assert sp is obs.NULL_SPAN

    def test_span_appends_record(self, tmp_path):
        with obs.enabled_to(True, telemetry_dir=tmp_path):
            with obs.worker_context("w0"):
                with obs.span("decode", chunk=3) as sp:
                    sp.set(failures=1)
        records = obs.read_trace_dir(tmp_path)
        assert len(records) == 1
        rec = records[0]
        assert rec["kind"] == "span"
        assert rec["stage"] == "decode"
        assert rec["worker"] == "w0"
        assert rec["pid"] == os.getpid()
        assert rec["chunk"] == 3 and rec["failures"] == 1
        assert rec["dur_s"] >= 0.0
        assert (tmp_path / "trace-w0.jsonl").exists()

    def test_span_tags_errors_and_reraises(self, tmp_path):
        with obs.enabled_to(True, telemetry_dir=tmp_path):
            with pytest.raises(ValueError):
                with obs.span("job"):
                    raise ValueError("boom")
        (rec,) = obs.read_trace_dir(tmp_path)
        assert rec["error"] == "ValueError"

    def test_worker_context_is_thread_local(self, tmp_path):
        seen = {}

        def run(worker):
            with obs.worker_context(worker):
                with obs.span("sample"):
                    pass
            seen[worker] = True

        with obs.enabled_to(True, telemetry_dir=tmp_path):
            threads = [
                threading.Thread(target=run, args=(f"w{i}",)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        names = sorted(p.name for p in tmp_path.glob("trace-*.jsonl"))
        assert names == ["trace-w0.jsonl", "trace-w1.jsonl"]

    def test_read_skips_torn_lines(self, tmp_path):
        path = tmp_path / "trace-w0.jsonl"
        good = {"kind": "span", "stage": "decode", "ts": 1.0, "dur_s": 0.1}
        path.write_text(json.dumps(good) + "\n" + '{"kind": "sp')
        records = obs.read_trace_dir(tmp_path)
        assert len(records) == 1

    def test_aggregate_stages_shares(self):
        records = [
            {"kind": "span", "stage": "sample", "worker": "w0",
             "ts": 0.0, "dur_s": 1.0},
            {"kind": "span", "stage": "decode", "worker": "w0",
             "ts": 1.0, "dur_s": 3.0},
        ]
        agg = aggregate_stages(records)
        assert agg["stages"]["sample"]["share"] == pytest.approx(0.25)
        assert agg["stages"]["decode"]["share"] == pytest.approx(0.75)
        assert agg["wall_s"] == pytest.approx(4.0)
        assert agg["workers"] == ["w0"]

    def test_chrome_trace_export(self, tmp_path):
        with obs.enabled_to(True, telemetry_dir=tmp_path):
            with obs.worker_context("w0"):
                with obs.span("decode", chunk=1):
                    pass
        out = tmp_path / "out" / "trace.json"
        n = obs.write_chrome_trace(tmp_path, out)
        assert n == 1
        doc = json.loads(out.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert slices[0]["name"] == "decode"
        assert slices[0]["args"]["chunk"] == 1
        assert names[0]["args"]["name"] == "w0"

    def test_chrome_trace_empty(self):
        assert chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


# -- heartbeats --------------------------------------------------------------


class TestHeartbeats:
    def test_roundtrip(self, tmp_path):
        with obs.enabled_to(True, telemetry_dir=tmp_path):
            obs.write_heartbeat(
                "w0",
                group="g1",
                jobs_done=3,
                metrics={"counters": {"x": 1}},
                extra={"claims": 2},
            )
        (beat,) = obs.read_heartbeats(tmp_path)
        assert beat["worker"] == "w0"
        assert beat["group"] == "g1"
        assert beat["jobs_done"] == 3
        assert beat["claims"] == 2
        assert beat["metrics"]["counters"]["x"] == 1
        assert beat["age_s"] >= 0.0

    def test_rewrite_replaces(self, tmp_path):
        with obs.enabled_to(True, telemetry_dir=tmp_path):
            obs.write_heartbeat("w0", jobs_done=1)
            obs.write_heartbeat("w0", jobs_done=2)
        (beat,) = obs.read_heartbeats(tmp_path)
        assert beat["jobs_done"] == 2

    def test_noop_when_off(self, tmp_path):
        obs.configure(telemetry_dir=tmp_path)  # dir set but obs off
        obs.write_heartbeat("w0")
        assert obs.read_heartbeats(tmp_path) == []

    def test_missing_dir_is_empty(self, tmp_path):
        assert obs.read_heartbeats(tmp_path / "nope") == []


# -- logger / timing ---------------------------------------------------------


class TestLogger:
    def _logger(self, level="info"):
        stream = io.StringIO()
        from repro.obs.log import _LEVELS

        return Logger("test", level=_LEVELS[level], stream=stream), stream

    def test_format(self):
        logger, stream = self._logger()
        logger.info("claimed lease", worker="w0", ratio=0.51234, note="a b")
        line = stream.getvalue()
        assert "test: claimed lease" in line
        assert "worker=w0" in line
        assert "ratio=0.512" in line
        assert "note='a b'" in line

    def test_level_filtering(self):
        logger, stream = self._logger(level="warn")
        logger.info("hidden")
        logger.warn("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_not_gated_on_obs_flag(self):
        assert not obs.enabled()
        logger, stream = self._logger()
        logger.info("progress is visible with telemetry off")
        assert "visible" in stream.getvalue()

    def test_get_logger_cached(self):
        assert obs.get_logger("same") is obs.get_logger("same")


class TestTimed:
    def test_ticks_with_obs_off(self):
        """timed() is functional (meta elapsed, solver budgets), so it
        must measure even when instruments are disabled."""
        assert not obs.enabled()
        with obs.timed() as clock:
            pass
        assert clock.elapsed >= 0.0

    def test_histogram_feed_is_gated(self):
        with obs.timed("gated.hist_s"):
            pass
        assert obs.snapshot()["histograms"]["gated.hist_s"]["count"] == 0
        with obs.enabled_to(True):
            with obs.timed("gated.hist_s"):
                pass
        assert obs.snapshot()["histograms"]["gated.hist_s"]["count"] == 1

    def test_stopwatch_restart(self):
        clock = obs.StopWatch()
        first = clock.elapsed
        clock.restart()
        assert clock.elapsed <= max(first, clock.elapsed)


# -- byte identity (the load-bearing contract) -------------------------------


class TestByteIdentity:
    def _shard_bytes(self, path):
        out = {}
        for name in sorted(os.listdir(path)):
            if name.startswith("results") and name.endswith(".jsonl"):
                with open(os.path.join(path, name), "rb") as fh:
                    out[name] = fh.read()
        return out

    def test_instrumented_run_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, store=str(tmp_path / "plain"))
        with obs.enabled_to(True):
            run_campaign(spec, store=str(tmp_path / "obs"))
        a = ResultStore(tmp_path / "plain")
        b = ResultStore(tmp_path / "obs")
        assert a.content_digest() == b.content_digest()
        # The instrumented run *did* produce sidecars (auto-wired to
        # <store>/telemetry), outside the result shards.
        tdir = tmp_path / "obs" / "telemetry"
        assert any(p.name.startswith("trace-") for p in tdir.iterdir())
        a.compact()
        b.compact()
        assert self._shard_bytes(tmp_path / "plain") == self._shard_bytes(
            tmp_path / "obs"
        )

    def test_instrumented_fleet_matches_uninstrumented_single(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, store=str(tmp_path / "single"))
        with obs.enabled_to(True):
            report = serve_campaign(
                spec,
                tmp_path / "fleet",
                n_workers=2,
                ttl=10,
                poll=0.05,
                timeout=300,
            )
        assert report.complete
        assert (
            ResultStore(tmp_path / "single").content_digest()
            == ResultStore(tmp_path / "fleet").content_digest()
        )
        # Live telemetry came out the side: spans + final heartbeats.
        summary = dashboard.telemetry_summary(tmp_path / "fleet")
        assert summary["stages"]["job"]["count"] == 2
        assert summary["metrics"]["counters"]["store.appends"] == 2
        assert len(summary["heartbeats"]) == 2
        assert all(b.get("done") for b in summary["heartbeats"])


# -- dashboards --------------------------------------------------------------


class TestDashboard:
    def test_empty_store_renders_placeholder(self, tmp_path):
        lines = dashboard.render_telemetry(tmp_path)
        assert any("REPRO_OBS" in line for line in lines)

    def test_top_renders_stale_and_done(self, tmp_path):
        with obs.enabled_to(True, telemetry_dir=tmp_path / "telemetry"):
            obs.write_heartbeat("w0", group="g", jobs_done=1)
            obs.write_heartbeat("w1", extra={"done": True})
        lines = dashboard.render_top(tmp_path, stale_after=-1.0)
        text = "\n".join(lines)
        assert "STALE" in text  # w0's fresh beat, forced stale cutoff
        assert "done" in text

    def test_summary_folds_heartbeat_and_trace_metrics(self, tmp_path):
        """A heartbeat and a trace metrics line from the same process
        must not double-count; a distinct process must add."""
        tdir = tmp_path / "telemetry"
        with obs.enabled_to(True, telemetry_dir=tdir):
            obs.counter("store.appends").add(4)
            with obs.worker_context("w0"):
                obs.emit_metrics(obs.snapshot())
            obs.write_heartbeat("w0", metrics=obs.snapshot())
        other = {
            "kind": "metrics", "worker": "r1", "pid": 999999, "host": "other",
            "ts": 1.0, "metrics": {"counters": {"store.appends": 2}},
        }
        with open(tdir / "trace-r1.jsonl", "w") as fh:
            fh.write(json.dumps(other) + "\n")
        summary = dashboard.telemetry_summary(tmp_path)
        assert summary["metrics"]["counters"]["store.appends"] == 6

    def test_render_counters_rates(self):
        summary = {
            "metrics": {
                "counters": {
                    "syncache.hits": 75,
                    "syncache.misses": 25,
                    "syncache.inserts": 25,
                    "decode.shots": 1000,
                    "decode.unique": 100,
                    "lease.claims": 4,
                    "store.appends": 4,
                    "kernel.backend.numpy": 12,
                }
            }
        }
        text = "\n".join(dashboard.render_counters(summary))
        assert "75% hit rate" in text
        assert "100 unique syndromes for 1000 shots" in text
        assert "4 claims" in text
        assert "12 via numpy" in text
