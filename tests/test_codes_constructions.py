"""Tests for groups, lifted products, quantum Tanner codes, and Table 1."""

import numpy as np
import pytest

from repro import gf2
from repro.codes import (
    EXPECTED_PARAMETERS,
    cyclic_group,
    dihedral_group,
    estimate_distance,
    hypergraph_product,
    lifted_product,
    load_benchmark_code,
    parity_code,
    quantum_tanner_code,
    repetition_code,
    toric_like_code,
)
from repro.codes.groups import RingMatrix


class TestGroups:
    def test_cyclic_structure(self):
        g = cyclic_group(5)
        assert g.order == 5
        assert g.identity == 0
        assert g.mul(2, 4) == 1
        assert g.inv(2) == 3
        assert g.is_abelian()

    def test_dihedral_structure(self):
        g = dihedral_group(3)
        assert g.order == 6
        assert not g.is_abelian()
        e = g.identity
        for a in range(g.order):
            assert g.mul(a, g.inv(a)) == e

    def test_dihedral_relation(self):
        # s r = r^{-1} s in D_n
        g = dihedral_group(4)
        r, s = 2, 1  # r^1 s^0 encoded as 2*1+0; s = 2*0+1
        sr = g.mul(s, r)
        r_inv_s = g.mul(g.inv(r), s)
        assert sr == r_inv_s

    def test_left_right_regular_commute(self):
        for g in (cyclic_group(4), dihedral_group(3)):
            for a in range(g.order):
                for b in range(g.order):
                    left = g.left_regular(a).astype(int)
                    right = g.right_regular(b).astype(int)
                    assert np.array_equal(left @ right % 2, right @ left % 2)

    def test_regular_rep_is_homomorphism(self):
        g = dihedral_group(3)
        for a in range(g.order):
            for b in range(g.order):
                prod = g.left_regular(g.mul(a, b)).astype(int)
                composed = (
                    g.left_regular(a).astype(int) @ g.left_regular(b).astype(int) % 2
                )
                assert np.array_equal(prod, composed)


class TestRingMatrix:
    def test_lift_identity(self):
        g = cyclic_group(3)
        eye = RingMatrix.identity(g, 2)
        assert np.array_equal(eye.lift("left"), np.eye(6, dtype=np.uint8))
        assert np.array_equal(eye.lift("right"), np.eye(6, dtype=np.uint8))

    def test_conjugate_transpose_involution(self):
        g = dihedral_group(3)
        m = RingMatrix.from_monomials(g, [[1, 3], [None, 2]])
        twice = m.conjugate_transpose().conjugate_transpose()
        assert twice.entries == m.entries

    def test_lift_rejects_bad_side(self):
        g = cyclic_group(2)
        m = RingMatrix.identity(g, 1)
        with pytest.raises(ValueError):
            m.lift("middle")


class TestHypergraphProduct:
    def test_toric_like_parameters(self):
        code = toric_like_code(3)
        assert code.n == 3 * 3 + 2 * 2
        assert code.k == 1

    def test_hgp_commutes_by_construction(self):
        c1, c2 = repetition_code(3), parity_code(4)
        code = hypergraph_product(c1, c2)
        assert not gf2.matmul(code.hx, code.hz.T).any()


class TestLiftedProduct:
    def test_lp_over_nonabelian_group_commutes(self):
        g = dihedral_group(3)
        rng = np.random.default_rng(0)
        a = RingMatrix.from_monomials(
            g, [[int(rng.integers(0, 6)) for _ in range(3)] for _ in range(2)]
        )
        b = RingMatrix.from_monomials(
            g, [[int(rng.integers(0, 6)) for _ in range(2)] for _ in range(2)]
        )
        code = lifted_product(a, b)  # CSSCode validates hx @ hz^T = 0
        assert code.n == g.order * (3 * 2 + 2 * 2)

    def test_lp_reduces_to_hgp_for_trivial_group(self):
        # Over the trivial group, LP(A, B) with B = H2^T coincides with the
        # hypergraph product HGP(H1, H2) (hx = [H1 (x) I | I (x) H2^T]).
        g = cyclic_group(1)
        h = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        spec = [[0 if v else None for v in row] for row in h]
        spec_t = [[0 if v else None for v in row] for row in h.T]
        a = RingMatrix.from_monomials(g, spec)
        b = RingMatrix.from_monomials(g, spec_t)
        code = lifted_product(a, b)
        ref = hypergraph_product(repetition_code(3), repetition_code(3))
        assert code.n == ref.n
        assert code.k == ref.k


class TestQuantumTanner:
    def test_manual_construction_commutes(self):
        g = cyclic_group(7)
        rep2 = repetition_code(2)
        code = quantum_tanner_code(g, [1, 2], [3, 4], rep2, rep2)
        assert code.n == 7 * 4

    def test_rejects_duplicate_generators(self):
        g = cyclic_group(7)
        rep2 = repetition_code(2)
        with pytest.raises(ValueError):
            quantum_tanner_code(g, [1, 1], [3, 4], rep2, rep2)

    def test_rejects_local_code_length_mismatch(self):
        g = cyclic_group(7)
        with pytest.raises(ValueError):
            quantum_tanner_code(
                g, [1, 2], [3, 4], repetition_code(3), repetition_code(2)
            )


class TestBenchmarkSuite:
    @pytest.mark.parametrize("name", sorted(EXPECTED_PARAMETERS))
    def test_n_and_k_match_table1(self, name):
        code = load_benchmark_code(name)
        n, k, d = EXPECTED_PARAMETERS[name]
        assert (code.n, code.k) == (n, k)
        assert code.distance == d

    @pytest.mark.parametrize("name", ["lp39", "rqt60", "rqt54"])
    def test_distance_estimates_match_table1(self, name):
        code = load_benchmark_code(name)
        est = estimate_distance(code, iterations=80, rng=np.random.default_rng(0))
        assert est == EXPECTED_PARAMETERS[name][2]

    def test_stabilizer_weights_match_paper(self):
        assert set(load_benchmark_code("rqt60").stabilizer_weights()["x"]) == {4}
        assert set(load_benchmark_code("rqt54").stabilizer_weights()["x"]) == {6}
        lp = load_benchmark_code("lp39")
        weights = set(lp.stabilizer_weights()["x"]) | set(lp.stabilizer_weights()["z"])
        assert weights == {4, 5, 6}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_benchmark_code("nope")
