"""End-to-end checks at larger code distances (d=7, d=9).

These exercise the scaling path the benchmark registry promises: the
bigger surface codes must flow through scheduling, building, tableau
verification, and DEM extraction.  Kept to a handful of medium-cost
tests (a few seconds each).
"""

import numpy as np
import pytest

from repro.analysis.deff import estimate_effective_distance
from repro.circuits import build_memory_experiment, coloration_schedule, nz_schedule
from repro.codes import rotated_surface_code
from repro.noise import NoiseModel
from repro.sim import extract_dem, verify_deterministic_detectors


@pytest.mark.parametrize("d", [7, 9])
def test_large_surface_schedules_valid(d):
    code = rotated_surface_code(d)
    assert nz_schedule(code).is_valid()
    assert nz_schedule(code).cnot_depth() == 4
    assert coloration_schedule(code).is_valid()


def test_d7_detectors_deterministic():
    code = rotated_surface_code(7)
    exp = build_memory_experiment(code, nz_schedule(code), rounds=2)
    assert verify_deterministic_detectors(exp.circuit, trials=2)


def test_d9_dem_extraction_scales():
    code = rotated_surface_code(9)
    exp = build_memory_experiment(code, nz_schedule(code), rounds=3)
    dem = extract_dem(NoiseModel(p=1e-3).apply(exp.circuit))
    assert dem.num_errors > 3000
    assert not dem.undetectable_logical_mechanisms()


def test_d7_nz_schedule_preserves_distance():
    """d_eff = d for the hand-designed schedule at d=7 (spot check via a
    modest number of subgraph samples; an upper bound of 7 plus no
    observation below 7)."""
    code = rotated_surface_code(7)
    est = estimate_effective_distance(
        code,
        nz_schedule(code),
        samples=10,
        rounds=2,
        rng=np.random.default_rng(0),
        max_subgraph_errors=80,
    )
    if est.deff is not None:
        assert est.deff >= 5  # never the hook-reduced 4 of a bad schedule
