"""Tests for the WCNF models and the branch-and-bound MaxSAT solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxsat import MaxSatSolver, WCNF


def brute_force_optimum(wcnf: WCNF) -> float | None:
    """Reference: try all assignments (tiny instances only)."""
    n = wcnf.num_vars
    best = None
    for mask in range(1 << n):
        assign = {v: bool((mask >> (v - 1)) & 1) for v in range(1, n + 1)}
        ok = all(
            any(((lit > 0) == assign[abs(lit)]) for lit in clause)
            for clause in wcnf.hard
        )
        if not ok:
            continue
        cost = sum(w for lit, w in wcnf.soft if (lit > 0) != assign[abs(lit)])
        if best is None or cost < best:
            best = cost
    return best


class TestWCNF:
    def test_variable_allocation(self):
        w = WCNF()
        a = w.new_var("a")
        b = w.new_var("b")
        assert (a, b) == (1, 2)
        assert w.names == {"a": 1, "b": 2}

    def test_duplicate_name_rejected(self):
        w = WCNF()
        w.new_var("a")
        with pytest.raises(ValueError):
            w.new_var("a")

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            WCNF().add_hard()

    def test_xor2_truth_table(self):
        for va in (False, True):
            for vb in (False, True):
                w = WCNF()
                a, b, out = w.new_var(), w.new_var(), w.new_var()
                w.add_xor2_equals(out, a, b)
                w.add_hard(a if va else -a)
                w.add_hard(b if vb else -b)
                w.add_hard(out if (va ^ vb) else -out)
                result = MaxSatSolver(w).solve()
                assert result.status == "optimal"

    @given(st.lists(st.booleans(), min_size=1, max_size=7))
    @settings(max_examples=30, deadline=None)
    def test_xor_tree_matches_parity(self, values):
        w = WCNF()
        inputs = [w.new_var() for _ in values]
        out = w.new_var()
        w.add_xor_tree(out, inputs)
        for var, val in zip(inputs, values):
            w.add_hard(var if val else -var)
        parity = sum(values) % 2 == 1
        w.add_hard(out if parity else -out)
        assert MaxSatSolver(w).solve().status == "optimal"
        # And the flipped output must be UNSAT.
        w2 = WCNF()
        inputs2 = [w2.new_var() for _ in values]
        out2 = w2.new_var()
        w2.add_xor_tree(out2, inputs2)
        for var, val in zip(inputs2, values):
            w2.add_hard(var if val else -var)
        w2.add_hard(-out2 if parity else out2)
        assert MaxSatSolver(w2).solve().status == "unsat"

    def test_stats(self):
        w = WCNF()
        a = w.new_var()
        w.add_soft(-a)
        w.add_hard(a)
        s = w.stats()
        assert s == {"variables": 1, "hard_clauses": 1, "soft_clauses": 1}


class TestSolver:
    def test_simple_optimum(self):
        w = WCNF()
        a, b = w.new_var(), w.new_var()
        w.add_hard(a, b)  # at least one true
        w.add_soft(-a)
        w.add_soft(-b)
        result = MaxSatSolver(w).solve()
        assert result.status == "optimal"
        assert result.cost == 1.0

    def test_unsat(self):
        w = WCNF()
        a = w.new_var()
        w.add_hard(a)
        w.add_hard(-a)
        assert MaxSatSolver(w).solve().status == "unsat"

    def test_weighted_softs(self):
        w = WCNF()
        a, b = w.new_var(), w.new_var()
        w.add_hard(a, b)
        w.add_soft(-a, 5.0)
        w.add_soft(-b, 1.0)
        result = MaxSatSolver(w).solve()
        assert result.cost == 1.0
        assert result.assignment[b] and not result.assignment[a]

    @given(st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        w = WCNF()
        n = int(rng.integers(2, 7))
        variables = [w.new_var() for _ in range(n)]
        for _ in range(int(rng.integers(1, 8))):
            size = min(int(rng.integers(1, 4)), n)
            lits = [
                int(v) * (1 if rng.random() < 0.5 else -1)
                for v in rng.choice(variables, size=size, replace=False)
            ]
            w.add_hard(*lits)
        for v in variables:
            if rng.random() < 0.7:
                w.add_soft(-v, 1.0)
        result = MaxSatSolver(w).solve()
        reference = brute_force_optimum(w)
        if reference is None:
            assert result.status == "unsat"
        else:
            assert result.status == "optimal"
            assert result.cost == pytest.approx(reference)

    def test_timeout_reports(self):
        # A dense instance with an absurdly small timeout.
        rng = np.random.default_rng(0)
        w = WCNF()
        variables = [w.new_var() for _ in range(40)]
        for _ in range(120):
            lits = [
                int(v) * (1 if rng.random() < 0.5 else -1)
                for v in rng.choice(variables, size=3, replace=False)
            ]
            w.add_hard(*lits)
        for v in variables:
            w.add_soft(-v)
        result = MaxSatSolver(w, timeout=1e-4).solve()
        assert result.status in ("timeout", "optimal", "unsat")
