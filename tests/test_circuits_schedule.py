"""Tests for the Schedule abstraction: layers, validity, rewrites."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import load_benchmark_code, rotated_surface_code
from repro.circuits import coloration_schedule, nz_schedule, poor_schedule
from repro.circuits.schedule import Schedule


@pytest.fixture
def d3():
    return rotated_surface_code(3)


@pytest.fixture
def sched(d3):
    return nz_schedule(d3)


class TestLayers:
    def test_nz_depth_is_4(self, sched):
        assert sched.cnot_depth() == 4

    def test_layers_respect_stab_orders(self, sched):
        layers = sched.layers()
        for (kind, s), order in sched.stab_orders.items():
            times = [layers[(kind, s, q)] for q in order]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    def test_layers_respect_qubit_orders(self, sched):
        layers = sched.layers()
        for q, order in sched.qubit_orders.items():
            times = [layers[(k, s, q)] for (k, s) in order]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    def test_cnot_layers_partition_edges(self, sched):
        flat = [e for bucket in sched.cnot_layers() for e in bucket]
        assert sorted(flat) == sorted(sched.edges())

    def test_cycle_is_unschedulable(self, d3):
        s = nz_schedule(d3)
        # Create a cyclic dependency: reverse one stabilizer's order while
        # its qubits' relative orders stay pinned by other stabilizers.
        key = ("x", 0)
        s.stab_orders[key] = list(reversed(s.stab_orders[key]))
        q0, q1 = s.stab_orders[key][0], s.stab_orders[key][-1]
        # Force a contradiction directly through qubit order.
        s.qubit_orders[q0] = list(s.qubit_orders[q0])
        if not s.is_schedulable():
            assert s.layers() is None
        else:
            # If still schedulable, force a 2-cycle between two stabs.
            (k1, s1), (k2, s2) = s.qubit_orders[q0][:2]
            shared = [
                q
                for q in s.stab_orders[(k1, s1)]
                if q in s.stab_orders[(k2, s2)]
            ]
            if len(shared) >= 2:
                a, b = shared[:2]
                s.qubit_orders[a] = [
                    e for e in s.qubit_orders[a] if e not in ((k1, s1), (k2, s2))
                ] + [(k1, s1), (k2, s2)]
                s.qubit_orders[b] = [
                    e for e in s.qubit_orders[b] if e not in ((k1, s1), (k2, s2))
                ] + [(k2, s2), (k1, s1)]
                # Opposite pairwise orders on two qubits of the same two
                # stabilizers is fine for a DAG; a real cycle needs the
                # stab orders to chain them — not guaranteed here, so just
                # check the API contract.
                assert s.layers() is None or s.is_schedulable()


class TestValidity:
    def test_good_schedules_valid(self, d3):
        assert nz_schedule(d3).is_valid()
        assert poor_schedule(d3).is_valid()
        assert coloration_schedule(d3).is_valid()

    def test_single_xz_swap_breaks_commutation(self, d3):
        s = nz_schedule(d3)
        # Find an overlapping X/Z pair and swap on exactly one shared qubit.
        overlap = d3.hx.astype(int) @ d3.hz.T.astype(int)
        xs, zs = [int(v) for v in np.argwhere(overlap)[0]]
        shared = np.nonzero(d3.hx[xs] & d3.hz[zs])[0]
        q = int(shared[0])
        s.swap_relative_order(q, ("x", xs), ("z", zs))
        assert s.commutation_violations()
        assert not s.is_valid()

    def test_double_swap_preserves_commutation(self, d3):
        s = nz_schedule(d3)
        overlap = d3.hx.astype(int) @ d3.hz.T.astype(int)
        xs, zs = [int(v) for v in np.argwhere(overlap)[0]]
        shared = [int(q) for q in np.nonzero(d3.hx[xs] & d3.hz[zs])[0]]
        assert len(shared) == 2  # surface code property used by §5.3.2
        for q in shared:
            s.swap_relative_order(q, ("x", xs), ("z", zs))
        assert not s.commutation_violations()

    @pytest.mark.parametrize("name", ["lp39", "rqt60", "rqt54"])
    def test_coloration_valid_for_ldpc_codes(self, name):
        code = load_benchmark_code(name)
        assert coloration_schedule(code).is_valid()


class TestRewrites:
    def test_reorder_moves_qubit(self, sched):
        key = ("x", 0)
        order = list(sched.stab_orders[key])
        if len(order) >= 2:
            sched.reorder("x", 0, move=order[-1], before=order[0])
            assert sched.stab_orders[key][0] == order[-1]

    def test_reorder_rejects_foreign_qubit(self, sched, d3):
        outside = [
            q for q in range(d3.n) if q not in sched.stab_orders[("x", 0)]
        ][0]
        with pytest.raises(ValueError):
            sched.reorder("x", 0, move=outside, before=sched.stab_orders[("x", 0)][0])

    def test_reorder_rejects_self(self, sched):
        q = sched.stab_orders[("x", 0)][0]
        with pytest.raises(ValueError):
            sched.reorder("x", 0, move=q, before=q)

    def test_swap_relative_order_is_involution(self, sched):
        q = 4  # center qubit touches 4 stabilizers
        before = list(sched.qubit_orders[q])
        s1, s2 = before[0], before[1]
        sched.swap_relative_order(q, s1, s2)
        sched.swap_relative_order(q, s1, s2)
        assert sched.qubit_orders[q] == before

    def test_copy_is_independent(self, sched):
        cp = sched.copy()
        key = ("x", 0)
        cp.stab_orders[key] = list(reversed(cp.stab_orders[key]))
        assert sched.stab_orders[key] != cp.stab_orders[key]


class TestConsistencyChecks:
    def test_rejects_bad_stab_order(self, d3, sched):
        orders = {k: list(v) for k, v in sched.stab_orders.items()}
        orders[("x", 0)] = orders[("x", 0)][:-1]  # drop a qubit
        with pytest.raises(ValueError):
            Schedule(d3, orders, sched.qubit_orders)

    def test_rejects_bad_qubit_order(self, d3, sched):
        qorders = {k: list(v) for k, v in sched.qubit_orders.items()}
        qorders[0] = qorders[0] + [qorders[0][0]]  # duplicate
        with pytest.raises(ValueError):
            Schedule(d3, sched.stab_orders, qorders)

    def test_from_layer_assignment_rejects_conflicts(self, d3):
        layer_of = {}
        for kind, matrix in (("x", d3.hx), ("z", d3.hz)):
            for s in range(matrix.shape[0]):
                for i, q in enumerate(np.nonzero(matrix[s])[0]):
                    layer_of[(kind, s, int(q))] = 0  # all at layer 0: conflict
        with pytest.raises(ValueError):
            Schedule.from_layer_assignment(d3, layer_of)


class TestColorationProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_colorations_always_valid(self, seed):
        code = rotated_surface_code(3)
        sched = coloration_schedule(code, np.random.default_rng(seed))
        assert sched.is_valid()

    def test_coloring_is_proper(self):
        from repro.circuits import bipartite_edge_coloring

        rng = np.random.default_rng(0)
        edges = list(
            {(int(rng.integers(0, 8)), int(rng.integers(0, 8))) for _ in range(30)}
        )
        coloring = bipartite_edge_coloring(edges)
        assert set(coloring) == set(edges)
        for (u1, v1), c1 in coloring.items():
            for (u2, v2), c2 in coloring.items():
                if (u1, v1) != (u2, v2) and c1 == c2:
                    assert u1 != u2 and v1 != v2

    def test_coloring_uses_delta_colors(self):
        from repro.circuits import bipartite_edge_coloring

        # A 3-regular bipartite graph must be colorable with 3 colors.
        edges = [(i, (i + k) % 4) for i in range(4) for k in range(3)]
        coloring = bipartite_edge_coloring(edges)
        assert max(coloring.values()) + 1 == 3
