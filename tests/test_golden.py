"""Golden-file regression tests for export schemas and table formatting.

Pin the exact text of ``campaign export`` (CSV and JSON row schemas) and
the fig06/fig12/fig15/fig15-bias table renderings over tiny,
deterministic campaigns — every job seeds from its own content address,
so these outputs are stable bytes until someone changes a schema, a
formatter, or the sampling itself.  That is the point: such changes must
show up in review as a golden diff, refreshed deliberately with::

    pytest tests/test_golden.py --update-golden
"""

import json

from repro.experiments import (
    fig06_schedules,
    fig12_benchmarks,
    fig15_bias,
    fig15_idle,
    figcalib,
)
from repro.experiments.campaign import CampaignSpec, export_rows, run_campaign
from repro.experiments.common import ExperimentResult


def _tiny_campaign(tmp_path):
    """A spec touching both estimators and a biased-noise cell."""
    spec = CampaignSpec(
        name="golden",
        codes=("surface_d3",),
        schedules=("nz",),
        p_values=(4e-3,),
        bases=("z",),
        noises=(None, "biased:10,pm=0.003"),
        estimators=("direct", "rare-event"),
        shots=256,
        chunk_size=64,
        seed=0,
        initial_shots=64,
        max_rounds=2,
        target_rel_halfwidth=0.5,
        min_failure_weight=2,
    )
    return run_campaign(spec, store=tmp_path / "store")


class TestCampaignExportGolden:
    def test_csv_schema_and_rows(self, tmp_path, golden):
        report = _tiny_campaign(tmp_path)
        rows = export_rows(report.store, report.jobs)
        result = ExperimentResult(name="campaign export")
        for row in rows:
            result.add(**row)
        golden.check("campaign_export.csv", result.to_csv() + "\n")

    def test_json_schema_and_rows(self, tmp_path, golden):
        report = _tiny_campaign(tmp_path)
        rows = export_rows(report.store, report.jobs)
        golden.check(
            "campaign_export.json",
            json.dumps(rows, indent=2, sort_keys=True) + "\n",
        )


class TestFigureTableGolden:
    def test_fig06_table(self, tmp_path, golden):
        result = fig06_schedules.run(p_values=(5e-3,), shots=640, store=tmp_path / "s")
        golden.check("fig06_table.txt", result.format_table() + "\n")

    def test_fig12_table(self, tmp_path, golden):
        result = fig12_benchmarks.run(
            codes=("surface_d3",),
            p_values=(3e-3,),
            shots=320,
            iterations=1,
            samples=5,
            store=tmp_path / "s",
        )
        golden.check("fig12_table.txt", result.format_table() + "\n")

    def test_fig15_table(self, tmp_path, golden):
        result = fig15_idle.run(
            idle_strengths=(0.0, 1e-3),
            shots=256,
            store=tmp_path / "s",
        )
        golden.check("fig15_table.txt", result.format_table() + "\n")

    def test_fig15_bias_table(self, tmp_path, golden):
        result = fig15_bias.run(
            p_values=(3e-3,),
            shots=256,
            store=tmp_path / "s",
        )
        golden.check("fig15_bias_table.txt", result.format_table() + "\n")

    def test_figcalib_table(self, tmp_path, golden):
        result = figcalib.run(
            p_values=(3e-3,),
            shots=256,
            store=tmp_path / "s",
        )
        golden.check("figcalib_table.txt", result.format_table() + "\n")
