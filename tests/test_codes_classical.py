"""Tests for classical binary codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    hamming_code,
    parity_code,
    random_regular_code,
    repetition_code,
)
from repro.codes.classical import ClassicalCode


class TestRepetition:
    def test_parameters(self):
        for n in (2, 3, 5):
            code = repetition_code(n)
            assert code.n == n
            assert code.k == 1
            assert code.distance() == n

    def test_codewords(self):
        code = repetition_code(4)
        assert code.contains(np.zeros(4, dtype=np.uint8))
        assert code.contains(np.ones(4, dtype=np.uint8))
        assert not code.contains(np.array([1, 0, 0, 0], dtype=np.uint8))

    def test_rejects_n1(self):
        with pytest.raises(ValueError):
            repetition_code(1)

    def test_dual_of_rep2_is_itself(self):
        rep2 = repetition_code(2)
        dual = rep2.dual()
        assert dual.k == 1
        assert dual.contains(np.array([1, 1], dtype=np.uint8))


class TestHamming:
    def test_parameters(self):
        code = hamming_code()
        assert (code.n, code.k, code.distance()) == (7, 4, 3)

    def test_self_orthogonal_dual_containment(self):
        # Hamming's dual (the simplex code) is contained in Hamming — the
        # property that makes the Steane code work.
        code = hamming_code()
        h = code.check_matrix.astype(int)
        assert not (h @ h.T % 2).any()


class TestParity:
    def test_parameters(self):
        code = parity_code(5)
        assert (code.n, code.k, code.distance()) == (5, 4, 2)

    def test_dual_is_repetition(self):
        dual = parity_code(3).dual()
        assert dual.k == 1
        assert dual.contains(np.ones(3, dtype=np.uint8))


class TestRandomRegular:
    def test_row_weights(self):
        rng = np.random.default_rng(0)
        code = random_regular_code(12, 6, 4, rng)
        assert all(int(r.sum()) == 4 for r in code.check_matrix)

    def test_row_weight_too_large(self):
        with pytest.raises(ValueError):
            random_regular_code(3, 2, 4, np.random.default_rng(0))


class TestClassicalCodeGeneric:
    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_rank_nullity(self, n):
        code = repetition_code(n)
        gen = code.generator_matrix
        assert gen.shape == (1, n)
        assert not (code.check_matrix.astype(int) @ gen.T % 2).any()

    def test_rejects_1d_matrix(self):
        with pytest.raises(ValueError):
            ClassicalCode(np.array([1, 0, 1], dtype=np.uint8))

    def test_repr(self):
        assert "rep3" in repr(repetition_code(3))
