"""Tests for decoding graphs, ambiguity finding, and min-weight solving."""

import numpy as np
import pytest

from repro.circuits import nz_schedule, poor_schedule
from repro.codes import rotated_surface_code
from repro.core import (
    DecodingGraph,
    build_maxsat_model,
    find_ambiguous_subgraph,
    is_ambiguous,
    sample_ambiguous_subgraphs,
    solve_min_weight_logical,
)
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel


@pytest.fixture(scope="module")
def d3_dem():
    code = rotated_surface_code(3)
    return dem_for(code, nz_schedule(code), NoiseModel(p=1e-3), basis="z", rounds=3)


@pytest.fixture(scope="module")
def poor_dem():
    code = rotated_surface_code(3)
    return dem_for(code, poor_schedule(code), NoiseModel(p=1e-3), basis="z", rounds=3)


class TestDecodingGraph:
    def test_adjacency_consistency(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        for e, dets in enumerate(graph.error_dets):
            for d in dets:
                assert e in graph.det_errors[d]

    def test_closure_errors(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        full = set(range(d3_dem.num_detectors))
        assert len(graph.closure_errors(full)) == d3_dem.num_errors

    def test_submatrices_shapes(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        dets = [0, 1, 2]
        errors = graph.closure_errors(set(dets))
        h, l_mat = graph.submatrices(dets, errors)
        assert h.shape == (3, len(errors))
        assert l_mat.shape == (d3_dem.num_observables, len(errors))


class TestAmbiguity:
    def test_is_ambiguous_basic(self):
        h = np.array([[1, 1]], dtype=np.uint8)
        ambiguous_l = np.array([[1, 0]], dtype=np.uint8)
        safe_l = np.array([[1, 1]], dtype=np.uint8)
        assert is_ambiguous(h, ambiguous_l)
        assert not is_ambiguous(h, safe_l)

    def test_zero_logical_is_unambiguous(self):
        h = np.array([[1, 1]], dtype=np.uint8)
        assert not is_ambiguous(h, np.zeros((1, 2), dtype=np.uint8))

    def test_finds_ambiguity_in_surface_code(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        rng = np.random.default_rng(0)
        found = sample_ambiguous_subgraphs(graph, 20, rng)
        assert found  # a d=3 code always has weight-3 ambiguous errors
        for sub in found:
            assert is_ambiguous(sub.h, sub.l)

    def test_subgraph_errors_are_closed(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        sub = find_ambiguous_subgraph(graph, np.random.default_rng(1))
        assert sub is not None
        det_set = set(sub.detectors)
        for e in sub.errors:
            assert all(d in det_set for d in graph.error_dets[e])

    def test_respects_size_cap(self, d3_dem):
        graph = DecodingGraph(d3_dem)
        sub = find_ambiguous_subgraph(
            graph, np.random.default_rng(0), max_errors=1
        )
        assert sub is None


class TestMinWeightSolvers:
    def _subgraphs(self, dem, n=6, seed=0):
        graph = DecodingGraph(dem)
        return sample_ambiguous_subgraphs(graph, n, np.random.default_rng(seed))

    def test_solution_is_a_logical_error(self, d3_dem):
        for sub in self._subgraphs(d3_dem):
            sol = solve_min_weight_logical(sub, np.random.default_rng(0))
            assert sol is not None
            e = np.zeros(sub.num_errors, dtype=np.uint8)
            e[sol.error_columns] = 1
            assert not (sub.h @ e % 2).any()  # undetected
            assert (sub.l @ e % 2).any()  # flips a logical

    def test_graphlike_matches_isd_when_applicable(self, d3_dem):
        """Full DEM subgraphs mix X/Z detector types, so some mechanisms
        are hyperedges and the graph-like solver declines (returns None);
        when it does apply, it must agree with ISD."""
        compared = 0
        for sub in self._subgraphs(d3_dem, n=10):
            g = solve_min_weight_logical(
                sub, np.random.default_rng(0), method="graphlike"
            )
            if g is None:
                continue
            i = solve_min_weight_logical(
                sub, np.random.default_rng(0), method="isd", isd_iterations=300
            )
            assert i is not None
            assert g.weight == i.weight
            compared += 1
        # The ISD path at least must have been exercised via auto elsewhere.

    def test_isd_matches_maxsat(self, d3_dem):
        compared = 0
        for sub in self._subgraphs(d3_dem, n=6):
            if sub.num_errors > 40 or compared >= 2:
                continue
            i = solve_min_weight_logical(
                sub, np.random.default_rng(0), method="isd", isd_iterations=300
            )
            m = solve_min_weight_logical(sub, method="maxsat", maxsat_timeout=120)
            assert i is not None and m is not None
            assert i.weight == m.weight
            compared += 1
        assert compared > 0

    def test_poor_schedule_has_lower_weight_logicals(self, d3_dem, poor_dem):
        """The poor schedule's hooks reduce d_eff below 3 (paper Fig 6)."""
        best_good = min(
            solve_min_weight_logical(s, np.random.default_rng(0)).weight
            for s in self._subgraphs(d3_dem, n=12, seed=3)
        )
        best_poor = min(
            solve_min_weight_logical(s, np.random.default_rng(0)).weight
            for s in self._subgraphs(poor_dem, n=12, seed=3)
        )
        assert best_poor < best_good
        assert best_good == 3

    def test_maxsat_model_sizes_reported(self, d3_dem):
        sub = self._subgraphs(d3_dem, n=1)[0]
        wcnf = build_maxsat_model(sub.h, sub.l)
        stats = wcnf.stats()
        assert stats["soft_clauses"] == sub.num_errors
        assert stats["variables"] >= sub.num_errors + sub.num_detectors
        assert stats["hard_clauses"] > 0

    def test_unknown_method_rejected(self, d3_dem):
        sub = self._subgraphs(d3_dem, n=1)[0]
        with pytest.raises(ValueError):
            solve_min_weight_logical(sub, method="quantum")
