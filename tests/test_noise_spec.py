"""Tests for the pluggable noise-scenario subsystem (NoiseSpec).

Covers the channel registry contract, the lowering of each channel to
labeled Pauli noise ops, exact equivalence of the depolarizing spec with
the legacy two-knob ``NoiseModel``, token resolution, and the
acceptance-level check that the rare-event stratified estimator agrees
with direct Monte Carlo on a biased ``NoiseSpec`` (the Poisson-binomial
weight pmf handles the heterogeneous mechanism probabilities biased
channels produce).
"""

import dataclasses

import numpy as np
import pytest

from repro.circuits import Circuit, nz_schedule
from repro.codes import load_benchmark_code
from repro.decoders.metrics import dem_for
from repro.experiments.shotrunner import run_shot_chunks
from repro.noise import (
    CHANNEL_REGISTRY,
    BiasedPauliChannel,
    CorrelatedPauliChannel,
    DepolarizingChannel,
    DeviceProfile,
    DriftSchedule,
    GateChannel,
    NoiseModel,
    NoiseSpec,
    channel_from_payload,
    register_channel,
    resolve_noise,
    synthetic_profile,
)
from repro.rareevent import estimate_ler_stratified


def tiny_circuit():
    c = Circuit()
    c.append("R", [0, 1])
    c.tick()
    c.append("H", [0])
    c.tick()
    c.append("CNOT", [0, 1])
    c.tick()
    c.append("M", [0, 1])
    return c


class TestRegistry:
    def test_builtin_channels_registered(self):
        assert CHANNEL_REGISTRY["depolarizing"] is DepolarizingChannel
        assert CHANNEL_REGISTRY["biased"] is BiasedPauliChannel

    def test_payload_dispatch(self):
        ch = channel_from_payload({"kind": "biased", "p": 0.01, "eta": 10.0})
        assert ch == BiasedPauliChannel(p=0.01, eta=10.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown channel kind"):
            channel_from_payload({"kind": "cosmic-rays", "p": 1.0})

    def test_third_party_channel_roundtrips(self):
        """The plugin contract: register, serialize, rebuild, lower."""

        @register_channel
        @dataclasses.dataclass(frozen=True)
        class XOnlyChannel(GateChannel):
            p: float
            KIND = "test-x-only"

            def ops(self, targets, arity):
                return [("PAULI_CHANNEL_1", targets, (self.p, 0.0, 0.0))]

            def to_payload(self):
                return {"kind": self.KIND, "p": self.p}

            @classmethod
            def from_payload(cls, payload):
                return cls(p=payload["p"])

        try:
            spec = NoiseSpec(sq=XOnlyChannel(0.02))
            rebuilt = NoiseSpec.from_payload(spec.to_payload())
            assert rebuilt == spec
            noisy = spec.apply(tiny_circuit())
            ops = [op for op in noisy if op.gate == "PAULI_CHANNEL_1"]
            assert ops and all(op.args == (0.02, 0.0, 0.0) for op in ops)
        finally:
            del CHANNEL_REGISTRY["test-x-only"]

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_channel
            class Imposter(GateChannel):
                KIND = "depolarizing"


class TestChannelValidation:
    def test_depolarizing_rate_bounds(self):
        with pytest.raises(ValueError):
            DepolarizingChannel(p=1.5)

    def test_biased_eta_positive(self):
        with pytest.raises(ValueError):
            BiasedPauliChannel(p=0.01, eta=0.0)
        with pytest.raises(ValueError):
            BiasedPauliChannel(p=0.01, eta=float("inf"))

    def test_spec_readout_bounds(self):
        with pytest.raises(ValueError):
            NoiseSpec(readout=1.5)
        with pytest.raises(ValueError):
            NoiseSpec(idle_strength=-0.1)

    def test_biased_split_sums_to_p(self):
        ch = BiasedPauliChannel(p=0.01, eta=10.0)
        px, py, pz = ch.pauli_probs()
        assert px == py
        assert px + py + pz == pytest.approx(0.01)
        assert pz / (px + py) == pytest.approx(10.0)

    def test_eta_half_is_depolarizing_split(self):
        px, py, pz = BiasedPauliChannel(p=0.03, eta=0.5).pauli_probs()
        assert px == pytest.approx(0.01)
        assert py == pytest.approx(0.01)
        assert pz == pytest.approx(0.01)


class TestLowering:
    def test_depolarizing_lowering_matches_hand_built_legacy_circuit(self):
        """Pin the exact op sequence the pre-registry ``NoiseModel``
        produced (``NoiseModel.apply`` now *delegates* to the spec, so
        the expectation is built by hand, not by calling the model)."""
        p, idle = 0.01, 0.02
        idle_p = (1.0 - np.exp(-idle)) / 4.0
        expected = Circuit()
        expected.append("R", [0, 1])
        expected.append("DEPOLARIZE1", [0, 1], (p,))
        expected.tick()
        expected.append("H", [0])
        expected.append("DEPOLARIZE1", [0], (p,))
        expected.append("PAULI_CHANNEL_1", [1], (idle_p, idle_p, idle_p))
        expected.tick()
        expected.append("CNOT", [0, 1])
        expected.append("DEPOLARIZE2", [0, 1], (p,))
        expected.tick()
        expected.append("DEPOLARIZE1", [0, 1], (p,))
        expected.append("M", [0, 1])
        noisy = NoiseSpec.depolarizing(p, idle_strength=idle).apply(tiny_circuit())
        assert noisy == expected
        # And the legacy shorthand still routes through the same spec.
        assert NoiseModel(p=p, idle_strength=idle).apply(tiny_circuit()) == expected

    def test_zero_p_spec_adds_nothing(self):
        assert NoiseSpec.depolarizing(0.0).apply(tiny_circuit()) == tiny_circuit()

    def test_biased_lowering_per_gate_class(self):
        spec = NoiseSpec.biased(0.01, eta=10.0)
        noisy = spec.apply(tiny_circuit())
        ops = [op.gate for op in noisy]
        # Every gate class lowers to PAULI_CHANNEL_1; none of the
        # depolarizing ops appear.
        assert "DEPOLARIZE1" not in ops and "DEPOLARIZE2" not in ops
        channels = [op for op in noisy if op.gate == "PAULI_CHANNEL_1"]
        # R(x2 qubits as one op), H, CNOT (independent per-qubit), M.
        assert len(channels) == 4
        px, py, pz = BiasedPauliChannel(0.01, 10.0).pauli_probs()
        assert all(op.args == (px, py, pz) for op in channels)
        i_cnot = ops.index("CNOT")
        assert ops[i_cnot + 1] == "PAULI_CHANNEL_1"
        cnot_noise = noisy.operations[i_cnot + 1]
        assert cnot_noise.targets == noisy.operations[i_cnot].targets

    def test_readout_flip_basis_alignment(self):
        c = Circuit()
        c.append("R", [0])
        c.append("RX", [1])
        c.tick()
        c.append("M", [0])
        c.append("MX", [1])
        noisy = NoiseSpec(readout=0.02).apply(c)
        flips = [op for op in noisy if op.gate == "PAULI_CHANNEL_1"]
        assert len(flips) == 2
        by_target = {op.targets[0]: op.args for op in flips}
        assert by_target[0] == (0.02, 0.0, 0.0)  # X flips a Z-basis M
        assert by_target[1] == (0.0, 0.0, 0.02)  # Z flips an X-basis MX
        # And each precedes its measurement.
        gates = [op.gate for op in noisy]
        assert gates.index("PAULI_CHANNEL_1") < gates.index("M")

    def test_per_gate_class_rates_are_independent(self):
        spec = NoiseSpec(
            sq=DepolarizingChannel(0.001),
            cnot=DepolarizingChannel(0.01),
            meas=None,
            readout=0.0,
        )
        noisy = spec.apply(tiny_circuit())
        d1 = [op for op in noisy if op.gate == "DEPOLARIZE1"]
        d2 = [op for op in noisy if op.gate == "DEPOLARIZE2"]
        assert {op.args for op in d1} == {(0.001,)}
        assert {op.args for op in d2} == {(0.01,)}
        # meas=None: no channel right before M.
        gates = [op.gate for op in noisy]
        assert gates[gates.index("M") - 1] != "DEPOLARIZE1"

    def test_channels_inherit_gate_labels(self):
        c = Circuit()
        c.append("CNOT", [0, 1], label=("cnot", "x", 0, 1, 0))
        noisy = NoiseSpec.biased(0.01, eta=2.0).apply(c)
        ch = [op for op in noisy if op.gate == "PAULI_CHANNEL_1"][0]
        assert ch.label == ("cnot", "x", 0, 1, 0)

    def test_refuses_double_noise(self):
        noisy = NoiseSpec.depolarizing(0.01).apply(tiny_circuit())
        with pytest.raises(ValueError):
            NoiseSpec(readout=0.01).apply(noisy)


class TestResolution:
    def test_none_is_depolarizing(self):
        assert resolve_noise(None, 1e-3) == NoiseSpec.depolarizing(1e-3)

    def test_spec_passthrough(self):
        spec = NoiseSpec.biased(1e-3, 10.0)
        assert resolve_noise(spec, 5e-2) is spec

    def test_inline_payload_is_absolute(self):
        payload = NoiseSpec.biased(2e-3, eta=10.0).to_payload()
        # The job's p does not rescale an inline payload.
        assert resolve_noise(payload, 9e-1) == NoiseSpec.biased(2e-3, eta=10.0)

    def test_bad_tokens_rejected(self):
        # Bad tokens normalize to ValueError naming the offender —
        # never a bare KeyError/float-parse traceback.
        with pytest.raises(ValueError, match="unknown noise token"):
            resolve_noise("quantum-gravity", 1e-3)
        with pytest.raises(ValueError, match="unknown noise clause 'volume=11'"):
            resolve_noise("biased:10,volume=11", 1e-3)
        with pytest.raises(ValueError, match="malformed bias eta 'big'"):
            resolve_noise("biased:big", 1e-3)

    def test_bare_relative_readout_clause(self):
        # "pm=p" (coefficient omitted) means 1*p; it used to crash with
        # an unhelpful float('') ValueError.
        assert resolve_noise("pm=p", 2e-3).readout == 2e-3
        assert resolve_noise("biased:10,pm=p", 2e-3).readout == 2e-3

    def test_malformed_clause_values_name_the_clause(self):
        with pytest.raises(ValueError, match="malformed noise clause pm='x2p'"):
            resolve_noise("pm=x2p", 1e-3)
        with pytest.raises(ValueError, match="malformed noise clause ct=''"):
            resolve_noise("depolarizing,ct=", 1e-3)

    def test_duplicate_clauses_rejected(self):
        # Last-wins duplicates used to be silently accepted.
        with pytest.raises(ValueError, match="duplicate noise clause 'pm'"):
            resolve_noise("biased:2,pm=0.01,pm=0.02", 1e-3)
        with pytest.raises(ValueError, match="duplicate noise clause 'ct'"):
            resolve_noise("pm=0.01,ct=2p,ct=3p", 1e-3)

    def test_crosstalk_clause_threads_through_tokens(self):
        spec = resolve_noise("correlated,ct=2p,pm=0.004", 1e-3)
        assert spec.crosstalk == 2e-3
        assert spec.readout == 0.004
        assert spec.cnot == CorrelatedPauliChannel.depolarizing(1e-3)

    def test_misspelled_payload_fields_rejected(self):
        """Unknown payload keys fail loudly: a typo'd field must not
        silently run different physics while perturbing the hash."""
        good = NoiseSpec.biased(1e-3, 10.0, readout=0.01).to_payload()
        typo = dict(good)
        typo["redout"] = typo.pop("readout")
        with pytest.raises(ValueError, match="unknown noise-spec fields"):
            NoiseSpec.from_payload(typo)
        chan_typo = dict(good)
        chan_typo["sq"] = {"kind": "depolarizing", "p": 5e-3, "eta": 99}
        with pytest.raises(ValueError, match="unknown channel payload"):
            NoiseSpec.from_payload(chan_typo)

    def test_idle_strength_threads_through_tokens(self):
        spec = resolve_noise("biased:10", 1e-3, idle_strength=0.02)
        assert spec.idle_strength == 0.02


class TestBiasedPhysics:
    """The scenario family must produce the physics it claims."""

    def test_z_bias_spares_z_memory(self):
        """Z-biased noise barely flips a z-basis memory observable but
        dominates the x-basis one — the asymmetry the sweep studies."""
        code = load_benchmark_code("surface_d3")
        sched = nz_schedule(code)
        spec = NoiseSpec.biased(8e-3, eta=100.0)
        rng = np.random.default_rng(0)
        z = run_shot_chunks(dem_for(code, sched, spec, basis="z"), 20_000, rng=rng)
        x = run_shot_chunks(
            dem_for(code, sched, spec, basis="x"), 20_000, basis="x", rng=rng
        )
        assert x.rate > 3 * z.rate

    def test_readout_error_decoupled_from_gate_error(self):
        """p_m alone produces logical errors even at zero gate error."""
        code = load_benchmark_code("surface_d3")
        sched = nz_schedule(code)
        dem = dem_for(code, sched, NoiseSpec(readout=0.02), basis="z")
        est = run_shot_chunks(dem, 20_000, rng=np.random.default_rng(1))
        assert est.rate > 0

    def test_rare_event_agrees_with_direct_mc_on_biased_spec(self):
        """Acceptance: stratified estimates on a biased NoiseSpec agree
        with direct MC within combined CIs on surface_d3."""
        code = load_benchmark_code("surface_d3")
        dem = dem_for(
            code,
            nz_schedule(code),
            NoiseSpec.biased(8e-3, eta=10.0, readout=0.01),
            basis="z",
        )
        strat = estimate_ler_stratified(
            dem,
            rng=np.random.default_rng(1),
            target_rel_halfwidth=0.08,
            max_shots=400_000,
        )
        direct = run_shot_chunks(dem, shots=400_000, rng=np.random.default_rng(3))
        assert strat.converged
        s_lo, s_hi = strat.interval
        d_lo, d_hi = direct.interval
        assert s_lo <= d_hi and d_lo <= s_hi, (strat, direct)


class TestCorrelatedChannel:
    def test_needs_15_probs(self):
        with pytest.raises(ValueError, match="15 pair probabilities"):
            CorrelatedPauliChannel(probs=(0.01,) * 3)

    def test_total_bounded(self):
        with pytest.raises(ValueError, match="sum"):
            CorrelatedPauliChannel(probs=(0.1,) * 15)

    def test_lowers_to_pauli_channel_2(self):
        ch = CorrelatedPauliChannel.from_pairs({"XX": 0.01, "ZZ": 0.02})
        ((gate, targets, args),) = ch.ops((3, 7), arity=2)
        assert gate == "PAULI_CHANNEL_2"
        assert targets == (3, 7)
        assert args[4] == 0.01 and args[14] == 0.02 and sum(args) == 0.03

    def test_rejects_single_qubit_slots(self):
        ch = CorrelatedPauliChannel.depolarizing(0.01)
        with pytest.raises(ValueError, match="cannot attach"):
            ch.ops((0,), arity=1)
        # ...and the spec catches the misconfiguration at construction.
        with pytest.raises(ValueError, match="'sq' slot"):
            NoiseSpec(sq=ch)
        with pytest.raises(ValueError, match="'meas' slot"):
            NoiseSpec(meas=ch)

    def test_payload_roundtrip(self):
        ch = CorrelatedPauliChannel.from_pairs({"XY": 1e-3})
        assert channel_from_payload(ch.to_payload()) == ch

    def test_unknown_pair_labels_rejected(self):
        with pytest.raises(ValueError, match="unknown two-qubit Pauli labels"):
            CorrelatedPauliChannel.from_pairs({"XQ": 0.1})

    def test_spec_lowering_emits_pauli_channel_2(self):
        noisy = NoiseSpec.correlated(0.01).apply(tiny_circuit())
        ((op),) = [op for op in noisy if op.gate == "PAULI_CHANNEL_2"]
        assert op.targets == (0, 1)
        assert op.args == (0.01 / 15,) * 15


class TestDeviceProfile:
    def test_scale_composes_gate_and_qubit_means(self):
        prof = DeviceProfile(qubits={0: 2.0, 1: 4.0}, gates={"cnot": 1.5})
        assert prof.scale("cnot", (0, 1)) == 1.5 * 3.0
        assert prof.scale("sq", (0,)) == 2.0
        assert prof.scale("sq", (5,)) == 1.0  # default

    def test_unknown_gate_class_rejected(self):
        with pytest.raises(ValueError, match="unknown device-profile gate classes"):
            DeviceProfile(gates={"cz": 2.0})

    def test_payload_roundtrip(self):
        prof = DeviceProfile(qubits={3: 1.7}, gates={"readout": 2.0}, default=0.9)
        assert DeviceProfile.from_payload(prof.to_payload()) == prof

    def test_profile_splits_lowered_ops_by_factor(self):
        prof = DeviceProfile(qubits={0: 2.0})
        spec = NoiseSpec.depolarizing(0.01, profile=prof)
        noisy = spec.apply(tiny_circuit())
        # R [0, 1] lowers to two DEPOLARIZE1 ops now: qubit 0 at 2x.
        d1 = [op for op in noisy if op.gate == "DEPOLARIZE1"]
        assert (tuple(d1[0].targets), d1[0].args) == ((0,), (0.02,))
        assert (tuple(d1[1].targets), d1[1].args) == ((1,), (0.01,))
        # The CNOT pair averages the qubit multipliers: (2 + 1) / 2.
        (d2,) = [op for op in noisy if op.gate == "DEPOLARIZE2"]
        assert d2.args == (0.015,)

    def test_uniform_profile_is_lowering_noop(self):
        base = NoiseSpec.depolarizing(0.01, readout=0.002)
        uniform = NoiseSpec.depolarizing(
            0.01, readout=0.002, profile=DeviceProfile(qubits={0: 1.0})
        )
        assert [
            (op.gate, tuple(op.targets), op.args) for op in base.apply(tiny_circuit())
        ] == [
            (op.gate, tuple(op.targets), op.args)
            for op in uniform.apply(tiny_circuit())
        ]
        # ...and content-addresses identically.
        assert uniform.key() == base.key()

    def test_overscaling_fails_loudly(self):
        prof = DeviceProfile(qubits={0: 100.0, 1: 100.0})
        with pytest.raises(ValueError, match="pushes DEPOLARIZE1"):
            NoiseSpec.depolarizing(0.5, profile=prof).apply(tiny_circuit())

    def test_synthetic_profile_deterministic(self):
        assert synthetic_profile(9, seed=3) == synthetic_profile(9, seed=3)
        assert synthetic_profile(9, seed=3) != synthetic_profile(9, seed=4)
        assert not synthetic_profile(9).is_uniform()

    def test_payload_roundtrips_through_spec(self):
        spec = NoiseSpec.depolarizing(0.01, profile=synthetic_profile(5, seed=1))
        assert NoiseSpec.from_payload(spec.to_payload()) == spec


class TestDriftSchedule:
    def test_hold_and_cycle_indexing(self):
        hold = DriftSchedule((1.0, 2.0, 3.0))
        assert [hold.factor(r) for r in (-1, 0, 2, 5)] == [1.0, 1.0, 3.0, 3.0]
        cyc = DriftSchedule((1.0, 2.0, 3.0), mode="cycle")
        assert [cyc.factor(r) for r in (3, 4)] == [1.0, 2.0]

    def test_linear_ramp(self):
        sched = DriftSchedule.linear(1.0, 2.0, 5)
        assert sched.multipliers == (1.0, 1.25, 1.5, 1.75, 2.0)

    def test_payload_roundtrip(self):
        sched = DriftSchedule((0.5, 1.5), mode="cycle")
        assert DriftSchedule.from_payload(sched.to_payload()) == sched
        with pytest.raises(ValueError, match="unknown drift-schedule fields"):
            DriftSchedule.from_payload({"multipliers": [1.0], "model": "hold"})

    def test_drift_scales_rounds_independently(self):
        c = Circuit()
        c.append("CNOT", [0, 1], label=("cnot", "x", 0, 1, 0))
        c.tick()
        c.append("CNOT", [0, 1], label=("cnot", "x", 0, 1, 1))
        spec = NoiseSpec.depolarizing(0.01, drift=DriftSchedule((1.0, 3.0)))
        d2 = [op for op in spec.apply(c) if op.gate == "DEPOLARIZE2"]
        assert [op.args for op in d2] == [(0.01,), (0.03,)]

    def test_unlabeled_circuit_uses_round_zero(self):
        spec = NoiseSpec.depolarizing(0.01, drift=DriftSchedule((2.0, 9.0)))
        d2 = [op for op in spec.apply(tiny_circuit()) if op.gate == "DEPOLARIZE2"]
        assert [op.args for op in d2] == [(0.02,)]

    def test_uniform_drift_keeps_key(self):
        base = NoiseSpec.depolarizing(0.01)
        held = NoiseSpec.depolarizing(0.01, drift=DriftSchedule((1.0, 1.0)))
        assert held.key() == base.key()


class TestMeasurementCrosstalk:
    def test_chain_pairs_same_basis_measurements(self):
        c = Circuit()
        c.append("M", [0])
        c.append("M", [1])
        c.append("MX", [2])
        c.append("M", [3])
        noisy = NoiseSpec(crosstalk=0.01).apply(c)
        pc2 = [op for op in noisy if op.gate == "PAULI_CHANNEL_2"]
        # Three M qubits -> chain (0,1), (1,3); single MX qubit -> none.
        assert [tuple(op.targets) for op in pc2] == [(0, 1), (1, 3)]
        for op in pc2:
            assert op.args[4] == 0.01 and sum(op.args) == 0.01  # XX flavor
        # Injected before the layer's first measurement.
        gates = [op.gate for op in noisy]
        assert gates.index("PAULI_CHANNEL_2") < gates.index("M")

    def test_mx_pairs_use_zz_flavor(self):
        c = Circuit()
        c.append("MX", [0])
        c.append("MX", [1])
        (op,) = [
            op
            for op in NoiseSpec(crosstalk=0.02).apply(c)
            if op.gate == "PAULI_CHANNEL_2"
        ]
        assert op.args[14] == 0.02 and sum(op.args) == 0.02

    def test_ticks_reset_pairing(self):
        c = Circuit()
        c.append("M", [0])
        c.tick()
        c.append("M", [1])
        noisy = NoiseSpec(crosstalk=0.01).apply(c)
        assert not [op for op in noisy if op.gate == "PAULI_CHANNEL_2"]

    def test_crosstalk_flips_neighboring_readouts(self):
        """The correlated flip really lands on both outcomes at once."""
        c = Circuit()
        c.append("R", [0, 1])
        c.tick()
        c.append("M", [0])
        c.append("M", [1])
        c.append("DETECTOR", [0], label=(0, "z", 0))
        c.append("DETECTOR", [1], label=(0, "z", 1))
        from repro.sim import FrameSimulator

        batch = FrameSimulator(NoiseSpec(crosstalk=1.0).apply(c)).sample_dense(
            shots=64, rng=np.random.default_rng(0)
        )
        assert batch.detectors.all()  # both readouts flip in every shot
