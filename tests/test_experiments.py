"""Tests for the experiment modules (fast configurations)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    fig06_schedules,
    fig13_random_starts,
    fig14_scaling,
    fig15_idle,
    fig16_zne,
    table1_codes,
    table2_models,
)
from repro.experiments.fig12_benchmarks import improvement_factors
from repro.experiments.runner import ALIASES, EXPERIMENTS


class TestExperimentResult:
    def test_add_and_columns(self):
        r = ExperimentResult("t")
        r.add(a=1, b=2.5)
        r.add(a=2, c="x")
        assert r.columns() == ["a", "b", "c"]

    def test_format_table(self):
        r = ExperimentResult("demo", notes="note")
        r.add(code="x", rate=1.234e-5)
        text = r.format_table()
        assert "demo" in text and "note" in text
        assert "1.234e-05" in text

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("empty").format_table()


class TestFastExperiments:
    def test_table1(self):
        result = table1_codes.run(distance_iterations=40)
        assert len(result.rows) == 8
        assert all(r["match"] for r in result.rows)

    def test_fig06_small(self):
        result = fig06_schedules.run(p_values=(5e-3,), shots=2000)
        rates = {r["schedule"]: r["logical_error_rate"] for r in result.rows}
        assert rates["poor"] > rates["good (N-Z)"]

    def test_table2_sizes_without_solving(self):
        result = table2_models.run(
            codes=("lp39",), global_timeout=0.5, solve_subgraph=False
        )
        forms = {r["formulation"]: r for r in result.rows}
        assert forms["subgraph"]["variables"] * 10 < forms["global"]["variables"]

    def test_fig14_rows(self):
        result = fig14_scaling.run(
            codes=("surface_d3",), samples_per_code=8, use_maxsat=False
        )
        for row in result.rows:
            assert row["num_subgraphs"] >= 1
            assert row["mean_solve_s"] >= 0

    def test_fig15_tiny(self):
        result = fig15_idle.run(
            idle_strengths=(0.0, 5e-3), shots=1500
        )
        circuits = {r["circuit"] for r in result.rows}
        assert "good (depth 4)" in circuits

    def test_fig16_amplification(self):
        result = fig16_zne.run_amplification(d=9, lambdas=(2.0, 4.0))
        assert result.rows[0]["max_amplification"] < result.rows[1]["max_amplification"]

    def test_fig16_bias_small(self):
        result = fig16_zne.run_bias(trials=10)
        assert len(result.rows) == 3

    def test_fig13_single_start(self):
        result = fig13_random_starts.run(
            num_starts=1, shots=1500, iterations=1, samples=8
        )
        assert len(result.rows) == 1

    def test_improvement_factors_helper(self):
        r = ExperimentResult("f")
        r.add(code="c", circuit="coloration", p=1e-3, logical_error_rate=4e-3)
        r.add(code="c", circuit="prophunt", p=1e-3, logical_error_rate=1e-3)
        factors = improvement_factors(r)
        assert factors[("c", 1e-3)] == pytest.approx(4.0)


class TestRunnerRegistry:
    def test_every_figure_has_an_entry(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig6",
            "fig12",
            "fig13",
            "fig14",
            "fig14lowp",
            "fig15",
            "fig15bias",
            "fig16",
            "figcalib",
            "table1",
            "table2",
        }

    def test_aliases_resolve(self):
        for alias, target in ALIASES.items():
            assert target in EXPERIMENTS


class TestCsvExport:
    def test_to_csv(self):
        r = ExperimentResult("t")
        r.add(a=1, b=2.5)
        r.add(a=2, b=3.0)
        csv = r.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,")

    def test_to_csv_quotes_commas(self):
        r = ExperimentResult("t")
        r.add(label="a,b")
        assert '"a,b"' in r.to_csv()
