"""Unit and property tests for bit-packed GF(2) matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import BitMatrix, pack_rows, unpack_rows
from repro.gf2.bitmat import transpose_words


def random_matrix(rng, m, n, density=0.5):
    return (rng.random((m, n)) < density).astype(np.uint8)


@st.composite
def dense_matrices(draw, max_rows=12, max_cols=90):
    m = draw(st.integers(1, max_rows))
    n = draw(st.integers(1, max_cols))
    bits = draw(
        st.lists(
            st.lists(st.integers(0, 1), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    return np.array(bits, dtype=np.uint8)


class TestPacking:
    def test_roundtrip_small(self):
        dense = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        packed = pack_rows(dense)
        assert np.array_equal(unpack_rows(packed, 3), dense)

    def test_roundtrip_word_boundary(self):
        rng = np.random.default_rng(0)
        for n in (63, 64, 65, 127, 128, 129):
            dense = random_matrix(rng, 5, n)
            assert np.array_equal(unpack_rows(pack_rows(dense), n), dense)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, dense):
        assert np.array_equal(unpack_rows(pack_rows(dense), dense.shape[1]), dense)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_rows(np.zeros(5, dtype=np.uint8))


class TestTransposeWords:
    def test_matches_dense_transpose(self):
        rng = np.random.default_rng(1)
        for m, n in [(1, 1), (3, 5), (63, 64), (64, 63), (65, 129), (200, 70)]:
            dense = random_matrix(rng, m, n)
            got = transpose_words(pack_rows(dense), n)
            want = pack_rows(np.ascontiguousarray(dense.T))
            assert got.shape == want.shape
            assert np.array_equal(got, want), (m, n)

    def test_involution(self):
        rng = np.random.default_rng(2)
        dense = random_matrix(rng, 100, 333)
        packed = pack_rows(dense)
        assert np.array_equal(
            transpose_words(transpose_words(packed, 333), 100), packed
        )

    def test_empty_rows(self):
        out = transpose_words(np.zeros((0, 2), dtype=np.uint64), 90)
        assert out.shape == (90, 1)
        assert not out.any()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            transpose_words(np.zeros(4, dtype=np.uint64), 4)

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_transpose_property(self, dense):
        n = dense.shape[1]
        got = transpose_words(pack_rows(dense), n)
        assert np.array_equal(got, pack_rows(np.ascontiguousarray(dense.T)))


class TestAccessors:
    def test_get_set(self):
        bm = BitMatrix.zeros(3, 70)
        bm.set(1, 65, 1)
        assert bm.get(1, 65) == 1
        assert bm.get(1, 64) == 0
        bm.set(1, 65, 0)
        assert bm.get(1, 65) == 0

    def test_identity(self):
        eye = BitMatrix.identity(5)
        assert np.array_equal(eye.to_dense(), np.eye(5, dtype=np.uint8))

    def test_row_weights(self):
        dense = np.array([[1, 1, 0], [0, 0, 0], [1, 1, 1]], dtype=np.uint8)
        bm = BitMatrix.from_dense(dense)
        assert list(bm.row_weights()) == [2, 0, 3]
        assert bm.row_weight(2) == 3

    def test_shape_and_repr(self):
        bm = BitMatrix.zeros(2, 3)
        assert bm.shape == (2, 3)
        assert "BitMatrix" in repr(bm)

    def test_equality(self):
        a = BitMatrix.identity(4)
        b = BitMatrix.identity(4)
        assert a == b
        b.set(0, 1, 1)
        assert a != b


class TestElimination:
    def test_rank_identity(self):
        assert BitMatrix.identity(8).rank() == 8

    def test_rank_dependent_rows(self):
        dense = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        # Third row is the XOR of the first two.
        assert BitMatrix.from_dense(dense).rank() == 2

    def test_rank_matches_numpy_mod2(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            dense = random_matrix(rng, 8, 8)
            got = BitMatrix.from_dense(dense).rank()
            # Reference: brute-force span size is 2**rank.
            span = {tuple(np.zeros(8, dtype=np.uint8))}
            for row in dense:
                span |= {tuple((np.array(v, dtype=np.uint8) ^ row)) for v in span}
            assert 2**got == len(span)

    def test_row_reduce_gives_rref(self):
        dense = np.array(
            [[1, 1, 0, 1], [1, 0, 1, 0], [0, 1, 1, 1]], dtype=np.uint8
        )
        bm = BitMatrix.from_dense(dense)
        pivots = bm.row_reduce()
        out = bm.to_dense()
        for r, col in enumerate(pivots):
            column = out[:, col]
            assert column[r] == 1 and column.sum() == 1

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_nullspace_property(self, dense):
        ns = BitMatrix.from_dense(dense).nullspace().to_dense()
        if ns.size:
            prod = dense.astype(int) @ ns.T.astype(int) % 2
            assert not prod.any()
        # rank-nullity
        assert BitMatrix.from_dense(dense).rank() + ns.shape[0] == dense.shape[1]

    def test_nullspace_vectors_independent(self):
        rng = np.random.default_rng(3)
        dense = random_matrix(rng, 6, 12)
        ns = BitMatrix.from_dense(dense).nullspace()
        assert ns.rank() == ns.nrows


class TestSolveAndRowspace:
    def test_solve_consistent(self):
        rng = np.random.default_rng(11)
        a = random_matrix(rng, 7, 10)
        x_true = random_matrix(rng, 1, 10)[0]
        b = a.astype(int) @ x_true % 2
        x = BitMatrix.from_dense(a).solve(b)
        assert x is not None
        assert np.array_equal(a.astype(int) @ x % 2, b)

    def test_solve_inconsistent(self):
        a = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        b = np.array([0, 1], dtype=np.uint8)
        assert BitMatrix.from_dense(a).solve(b) is None

    def test_solve_rejects_bad_rhs(self):
        with pytest.raises(ValueError):
            BitMatrix.identity(3).solve(np.zeros(2, dtype=np.uint8))

    def test_rowspace_membership(self):
        a = BitMatrix.from_dense(
            np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        )
        inside = BitMatrix.from_dense(np.array([[1, 0, 1]], dtype=np.uint8))
        outside = BitMatrix.from_dense(np.array([[1, 0, 0]], dtype=np.uint8))
        assert a.contains_in_rowspace(inside)
        assert not a.contains_in_rowspace(outside)

    def test_matvec(self):
        rng = np.random.default_rng(5)
        a = random_matrix(rng, 6, 70)
        x = random_matrix(rng, 1, 70)[0]
        got = BitMatrix.from_dense(a).matvec(x)
        assert np.array_equal(got, a.astype(int) @ x % 2)

    def test_stack_mismatched_columns(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(1, 3).stack(BitMatrix.zeros(1, 4))
