"""Tests for the extension features: OSD-CS order, parallel sampling."""

import numpy as np
import pytest

from repro.circuits import coloration_schedule, poor_schedule
from repro.codes import gb18_code, rotated_surface_code
from repro.core import DecodingGraph, PropHunt, PropHuntConfig
from repro.core.parallel import sample_and_solve
from repro.decoders import BpOsdDecoder
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.sim import DemSampler


@pytest.fixture(scope="module")
def gb_dem():
    code = gb18_code()
    return dem_for(code, coloration_schedule(code), NoiseModel(p=2e-3), rounds=2)


class TestOsdOrders:
    def test_osd_cs_at_least_as_good(self, gb_dem):
        sampler = DemSampler(gb_dem)
        batch = sampler.sample(1200, np.random.default_rng(0))
        base = BpOsdDecoder(gb_dem, osd_order=0)
        swept = BpOsdDecoder(gb_dem, osd_order=8)
        f0 = base.logical_failures(batch.detectors, batch.observables).mean()
        f1 = swept.logical_failures(batch.detectors, batch.observables).mean()
        # CS explores a superset of candidates; allow tiny statistical slack.
        assert f1 <= f0 + 0.01

    def test_osd_cs_solutions_satisfy_syndrome(self, gb_dem):
        dec = BpOsdDecoder(gb_dem, osd_order=6)
        sampler = DemSampler(gb_dem)
        batch = sampler.sample(300, np.random.default_rng(1))
        out = dec.decode_batch(batch.detectors)
        assert out.shape == (300, gb_dem.num_observables)


class TestParallelSampling:
    def test_matches_sequential(self):
        code = rotated_surface_code(3)
        dem = dem_for(code, poor_schedule(code), NoiseModel(p=1e-3), rounds=3)
        graph = DecodingGraph(dem)
        seq = sample_and_solve(graph, 12, base_seed=7, workers=1)
        par = sample_and_solve(graph, 12, base_seed=7, workers=2)
        assert len(seq) == len(par)
        seq_weights = sorted(s.weight for _, s in seq)
        par_weights = sorted(s.weight for _, s in par)
        assert seq_weights == par_weights

    def test_optimizer_with_workers(self):
        code = rotated_surface_code(3)
        cfg = PropHuntConfig(
            iterations=1, samples_per_iteration=12, seed=3, workers=2
        )
        result = PropHunt(code, cfg).optimize(poor_schedule(code))
        assert result.final_schedule.is_valid()
