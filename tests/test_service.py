"""The distributed campaign service: sharded store, leases, worker fleet.

The load-bearing claim: any fleet of racing workers — including one
killed mid-batch and taken over — produces a store whose compacted
bytes are identical to a single-process :func:`run_campaign`.  Every
test here is some projection of that claim.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import CampaignSpec, run_campaign, smoke_spec
from repro.experiments.service import (
    DEFAULT_SKEW_GRACE,
    affinity_key,
    claim_lease,
    lease_dir,
    lease_expired,
    plan_groups,
    read_lease,
    read_queue,
    release_lease,
    renew_lease,
    serve_campaign,
    worker_loop,
    write_queue,
)
from repro.experiments.store import ResultStore, job_key

# A tiny two-affinity-group campaign (4 jobs: 2 bases x 2 estimators)
# whose direct jobs take milliseconds.
SPEC = smoke_spec()


def tiny_spec(seed: int = 0) -> CampaignSpec:
    """Direct-only, both bases, two rates: 4 jobs, 4 affinity groups."""
    return CampaignSpec(
        name="tiny",
        codes=("surface_d3",),
        schedules=("nz",),
        p_values=(2e-3, 3e-3),
        bases=("z", "x"),
        shots=256,
        chunk_size=128,
        seed=seed,
    )


def shard_bytes(path) -> dict[str, bytes]:
    out = {}
    for name in sorted(os.listdir(path)):
        if name.startswith("results") and name.endswith(".jsonl"):
            with open(os.path.join(path, name), "rb") as fh:
                out[name] = fh.read()
    return out


# -- sharded store -----------------------------------------------------------


class TestShardedStore:
    def test_fresh_store_stays_legacy(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(job_key({"a": 1}), {"a": 1}, {"r": 1})
        assert not store.sharded
        assert (tmp_path / "s" / "results.jsonl").exists()

    def test_forced_sharding_routes_by_key_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "s", shard_prefix=1)
        keys = []
        for i in range(8):
            key = job_key({"i": i})
            keys.append(key)
            store.put(key, {"i": i}, {"r": i})
        files = {
            name
            for name in os.listdir(tmp_path / "s")
            if name.startswith("results-")
        }
        assert files == {f"results-{k[:1]}.jsonl" for k in keys}
        reread = ResultStore(tmp_path / "s")
        assert reread.sharded  # auto mode detects shards on disk
        assert sorted(reread.keys()) == sorted(keys)

    def test_sharded_handle_reads_legacy_store_identically(self, tmp_path):
        legacy = ResultStore(tmp_path / "s", shard_prefix=0)
        records = {}
        for i in range(6):
            key = job_key({"i": i})
            legacy.put(key, {"i": i}, {"r": i}, label=f"L{i}")
            records[key] = legacy.get(key)
        sharded = ResultStore(tmp_path / "s", shard_prefix=2)
        assert {k: sharded.get(k) for k in sharded.keys()} == records
        # New appends from the sharded handle land in shard files but
        # stay visible to a legacy-mode handle too.
        extra = job_key({"extra": True})
        sharded.put(extra, {"extra": True}, {"r": 99})
        assert ResultStore(tmp_path / "s", shard_prefix=0).get(extra) is not None

    def test_incremental_reload_tails_other_writers(self, tmp_path):
        a = ResultStore(tmp_path / "s", shard_prefix=1)
        b = ResultStore(tmp_path / "s", shard_prefix=1)
        k1 = job_key({"n": 1})
        a.put(k1, {"n": 1}, {"r": 1})
        assert k1 not in b
        b.reload()
        assert k1 in b
        k2 = job_key({"n": 2})
        a.put(k2, {"n": 2}, {"r": 2})
        b.reload()
        assert k2 in b and len(b) == 2

    def test_reload_survives_foreign_compaction(self, tmp_path):
        a = ResultStore(tmp_path / "s", shard_prefix=1)
        for i in range(5):
            a.put(job_key({"i": i}), {"i": i}, {"r": i}, meta={"elapsed_s": 0.5})
        b = ResultStore(tmp_path / "s")
        a.compact()  # rewrites files under b's feet (files may shrink)
        b.reload()
        assert len(b) == 5
        assert all("meta" not in r for r in b.records())

    def test_partial_trailing_line_tolerated_per_shard(self, tmp_path):
        store = ResultStore(tmp_path / "s", shard_prefix=1)
        key = job_key({"x": 1})
        store.put(key, {"x": 1}, {"r": 1})
        shard = tmp_path / "s" / f"results-{key[:1]}.jsonl"
        with open(shard, "ab") as fh:
            fh.write(b'{"key": "torn')  # killed mid-append
        reread = ResultStore(tmp_path / "s")
        assert reread.keys() == [key]
        # The next writer terminates the orphan; its record survives.
        key2 = job_key({"x": 2})
        reread.put(key2, {"x": 2}, {"r": 2})
        assert sorted(ResultStore(tmp_path / "s").keys()) == sorted([key, key2])

    def test_compaction_is_byte_deterministic(self, tmp_path):
        jobs = [({"i": i}, {"r": i * i}) for i in range(10)]
        a = ResultStore(tmp_path / "a", shard_prefix=1)
        for job, result in jobs:
            a.put(job_key(job), job, result, meta={"worker": "w0"})
        b = ResultStore(tmp_path / "b", shard_prefix=0)
        for job, result in reversed(jobs):  # different order, layout, meta
            key = job_key(job)
            b.put(key, job, result, meta={"worker": "w1", "elapsed_s": 1.0})
            b.put(key, job, result)  # and a duplicate
        assert a.content_digest() == b.content_digest()
        a.compact()
        b.compact()
        assert shard_bytes(tmp_path / "a") == shard_bytes(tmp_path / "b")
        assert not (tmp_path / "b" / "results.jsonl").exists()

    def test_query_by_key_prefix_and_job_fields(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for i in range(4):
            job = {"code": f"c{i % 2}", "i": i}
            store.put(job_key(job), job, {"r": i})
        assert len(store.query(code="c0")) == 2
        some_key = store.keys()[0]
        assert store.query(key_prefix=some_key[:8])[0]["key"] == some_key


# -- queue + affinity --------------------------------------------------------


class TestQueueAndAffinity:
    def test_queue_round_trip_and_dedup(self, tmp_path):
        jobs = SPEC.expand() + SPEC.expand()  # duplicates collapse
        write_queue(tmp_path, jobs, labels={jobs[0].key(): "first"})
        entries = read_queue(tmp_path)
        assert len(entries) == len(SPEC.expand())
        assert entries[0]["key"] == job_key(entries[0]["job"])
        by_key = {e["key"]: e for e in entries}
        assert by_key[jobs[0].key()]["label"] == "first"

    def test_read_queue_missing_and_torn(self, tmp_path):
        assert read_queue(tmp_path) is None
        write_queue(tmp_path, SPEC.expand())
        qpath = os.path.join(tmp_path, "service", "queue.json")
        with open(qpath, "w") as fh:
            fh.write('{"format": "campaign-queue-v1", "jobs": [')
        with pytest.raises(ValueError):
            read_queue(tmp_path)

    def test_affinity_groups_by_compile_config(self):
        jobs = SPEC.expand()  # (z, x) x (direct, rare-event)
        groups = plan_groups(
            [{"key": j.key(), "job": j.to_payload()} for j in jobs]
        )
        # Both estimators of one basis share a DEM/decoder -> 2 groups.
        assert len(groups) == 2
        assert all(len(entries) == 2 for _, entries in groups)
        zs = [j for j in jobs if j.basis == "z"]
        assert len({affinity_key(j.to_payload()) for j in zs}) == 1

    def test_plan_is_deterministic(self):
        entries = [
            {"key": j.key(), "job": j.to_payload()} for j in tiny_spec().expand()
        ]
        assert plan_groups(entries) == plan_groups(list(reversed(entries)))


# -- leases ------------------------------------------------------------------


class TestLeases:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        path = str(tmp_path / "g.lease")
        assert claim_lease(path, "w0", ttl=60)
        assert not claim_lease(path, "w1", ttl=60)
        release_lease(path, "w1")  # not the owner: no-op
        assert read_lease(path)["worker"] == "w0"
        release_lease(path, "w0")
        assert claim_lease(path, "w1", ttl=60)

    def test_expired_lease_is_taken_over(self, tmp_path):
        path = str(tmp_path / "g.lease")
        assert claim_lease(path, "w0", ttl=0.05)
        time.sleep(0.1)
        assert lease_expired(read_lease(path), skew_grace_s=0.0)
        assert claim_lease(path, "w1", ttl=60, skew_grace_s=0.0)
        assert read_lease(path)["worker"] == "w1"

    def test_renew_extends_and_detects_loss(self, tmp_path):
        path = str(tmp_path / "g.lease")
        claim_lease(path, "w0", ttl=0.05)
        assert renew_lease(path, "w0", ttl=60)
        assert not lease_expired(read_lease(path))
        assert not renew_lease(path, "w1", ttl=60)  # not the owner
        # Owner loses the lease to a takeover after expiry:
        claim_lease(str(tmp_path / "h.lease"), "w0", ttl=0.0)
        time.sleep(0.01)
        claim_lease(str(tmp_path / "h.lease"), "w1", ttl=60, skew_grace_s=0.0)
        assert not renew_lease(str(tmp_path / "h.lease"), "w0", ttl=60)

    def test_torn_lease_write_is_takeover_eligible(self, tmp_path):
        path = str(tmp_path / "g.lease")
        with open(path, "w") as fh:
            fh.write('{"format": "campaign-le')
        assert claim_lease(path, "w1", ttl=60)
        assert read_lease(path)["worker"] == "w1"

    def test_skew_grace_pads_expiry(self, tmp_path):
        """A lapsed TTL is not takeover-eligible until the skew budget
        has also passed — a taker with a fast clock must not steal a
        live worker's group."""
        path = str(tmp_path / "g.lease")
        assert claim_lease(path, "w0", ttl=0.05)
        time.sleep(0.1)
        lease = read_lease(path)
        # Inside the grace window the lease is still honored...
        assert not lease_expired(lease, skew_grace_s=60.0)
        assert not claim_lease(path, "w1", ttl=60, skew_grace_s=60.0)
        assert read_lease(path)["worker"] == "w0"
        # ...with no grace it is takeover-eligible (the old behavior).
        assert lease_expired(lease, skew_grace_s=0.0)
        assert claim_lease(path, "w1", ttl=60, skew_grace_s=0.0)
        assert read_lease(path)["worker"] == "w1"

    def test_skew_grace_default_absorbs_small_clock_skew(self):
        # Stamped by a host whose clock runs a second behind ours: raw
        # comparison calls it expired, the default grace does not.
        lease = {"worker": "w0", "expires_at": time.time() - 1.0}
        assert lease_expired(lease, skew_grace_s=0.0)
        assert not lease_expired(lease)
        assert lease_expired(
            lease, now=time.time() + DEFAULT_SKEW_GRACE + 2.0
        )

    def test_negative_grace_is_clamped_to_raw_comparison(self):
        lease = {"worker": "w0", "expires_at": time.time() + 30.0}
        assert not lease_expired(lease, skew_grace_s=-100.0)


# -- the fleet ---------------------------------------------------------------


class TestFleetDeterminism:
    def test_single_worker_matches_run_campaign(self, tmp_path):
        run_campaign(tiny_spec(), store=str(tmp_path / "single"))
        write_queue(tmp_path / "fleet", tiny_spec().expand())
        report = worker_loop(tmp_path / "fleet", worker_id="w0", poll=0.05)
        assert len(report.executed) == 4
        a = ResultStore(tmp_path / "single")
        b = ResultStore(tmp_path / "fleet")
        assert a.content_digest() == b.content_digest()
        a.compact()
        b.compact()
        assert shard_bytes(tmp_path / "single") == shard_bytes(tmp_path / "fleet")

    def test_two_inprocess_workers_byte_identical(self, tmp_path):
        run_campaign(SPEC, store=str(tmp_path / "single"))
        report = serve_campaign(
            SPEC,
            tmp_path / "fleet",
            n_workers=2,
            ttl=10,
            poll=0.05,
            timeout=300,
        )
        assert report.complete
        assert sum(len(w.executed) for w in report.workers) == 4
        a = ResultStore(tmp_path / "single")
        b = ResultStore(tmp_path / "fleet")
        assert a.content_digest() == b.content_digest()
        # Fleet records carry worker provenance; compaction strips it.
        assert all(r["meta"]["worker"] for r in b.records())
        a.compact()
        b.compact()
        assert shard_bytes(tmp_path / "single") == shard_bytes(tmp_path / "fleet")

    def test_serve_resumes_and_skips_stored_jobs(self, tmp_path):
        serve_campaign(SPEC, tmp_path / "s", n_workers=1, poll=0.05, timeout=300)
        report = serve_campaign(
            SPEC, tmp_path / "s", n_workers=1, poll=0.05, timeout=300
        )
        assert report.already_stored == 4
        assert sum(len(w.executed) for w in report.workers) == 0

    def test_serve_timeout_raises(self, tmp_path):
        with pytest.raises(TimeoutError):
            serve_campaign(SPEC, tmp_path / "s", n_workers=0, timeout=0.2, poll=0.05)

    def test_crash_recovery_via_expired_lease(self, tmp_path):
        """A dangling lease from a dead worker is taken over after TTL."""
        spec = tiny_spec()
        jobs = spec.expand()
        write_queue(tmp_path / "fleet", jobs)
        # Simulate the crash: a worker claimed a group and died without
        # releasing (chaos_exit_after does exactly this in-process).
        groups = plan_groups(read_queue(tmp_path / "fleet"))
        dead_aff = groups[0][0]
        lease = os.path.join(lease_dir(tmp_path / "fleet"), f"{dead_aff}.lease")
        assert claim_lease(lease, "dead-worker", ttl=0.2)
        report = worker_loop(
            tmp_path / "fleet",
            worker_id="rescuer",
            ttl=5,
            poll=0.05,
            skew_grace_s=0.0,
        )
        assert report.takeovers >= 1
        assert len(report.executed) == len(jobs)
        run_campaign(spec, store=str(tmp_path / "single"))
        assert (
            ResultStore(tmp_path / "single").content_digest()
            == ResultStore(tmp_path / "fleet").content_digest()
        )

    def test_max_jobs_bounds_a_worker(self, tmp_path):
        write_queue(tmp_path / "s", tiny_spec().expand())
        report = worker_loop(tmp_path / "s", max_jobs=1, poll=0.05)
        assert len(report.executed) == 1

    def test_once_pass_returns_without_queue(self, tmp_path):
        report = worker_loop(tmp_path / "empty", once=True)
        assert report.executed == [] and report.passes == 1


class TestRacingProcesses:
    def test_two_cli_workers_race_to_byte_identity(self, tmp_path):
        """Two real processes, one chaos-killed mid-run, end in the same
        bytes as a single-process campaign."""
        store = tmp_path / "fleet"
        write_queue(store, SPEC.expand(), name=SPEC.name)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )

        def spawn(*extra):
            return subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "campaign",
                    "worker",
                    "--store",
                    str(store),
                    "--poll",
                    "0.05",
                    *extra,
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

        chaos = spawn("--ttl", "1", "--chaos-exit-after", "1")
        steady = spawn("--ttl", "5", "--timeout", "240")
        assert chaos.wait(timeout=240) == 42  # died holding its lease
        assert steady.wait(timeout=240) == 0
        run_campaign(SPEC, store=str(tmp_path / "single"))
        a = ResultStore(tmp_path / "single")
        b = ResultStore(store)
        assert sorted(a.keys()) == sorted(b.keys())
        assert a.content_digest() == b.content_digest()
        a.compact()
        b.compact()
        assert shard_bytes(tmp_path / "single") == shard_bytes(store)
