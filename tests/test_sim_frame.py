"""Cross-validation: direct frame simulation vs DEM-based sampling.

The two samplers take completely different paths from circuit to
detector statistics; their distributions agreeing (rates, correlations)
is strong evidence both the DEM extraction and the samplers are right.
"""

import numpy as np
import pytest

from repro.circuits import build_memory_experiment, coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code, rotated_surface_code
from repro.noise import NoiseModel
from repro.sim import DemSampler, extract_dem
from repro.sim.frame import FrameSimulator


def build_noisy(code, schedule, p=3e-3, rounds=2, idle=0.0, basis="z"):
    exp = build_memory_experiment(code, schedule, rounds=rounds, basis=basis)
    return NoiseModel(p=p, idle_strength=idle).apply(exp.circuit)


class TestAgreement:
    @pytest.mark.parametrize("basis", ["z", "x"])
    def test_detector_rates_agree_surface(self, basis):
        code = rotated_surface_code(3)
        noisy = build_noisy(code, nz_schedule(code), basis=basis)
        shots = 60_000
        frame = FrameSimulator(noisy).sample(shots, np.random.default_rng(0))
        dem = extract_dem(noisy)
        demb = DemSampler(dem).sample(shots, np.random.default_rng(1))
        rate_f = frame.detectors.mean(axis=0)
        rate_d = demb.detectors.mean(axis=0)
        assert np.allclose(rate_f, rate_d, atol=4e-3)

    def test_observable_rates_agree(self):
        code = rotated_surface_code(3)
        noisy = build_noisy(code, nz_schedule(code), p=5e-3)
        shots = 60_000
        frame = FrameSimulator(noisy).sample(shots, np.random.default_rng(0))
        demb = DemSampler(extract_dem(noisy)).sample(shots, np.random.default_rng(1))
        assert frame.observables.mean() == pytest.approx(
            demb.observables.mean(), abs=5e-3
        )

    def test_agreement_with_idle_noise(self):
        code = rotated_surface_code(3)
        noisy = build_noisy(code, nz_schedule(code), p=2e-3, idle=0.01)
        shots = 40_000
        frame = FrameSimulator(noisy).sample(shots, np.random.default_rng(0))
        demb = DemSampler(extract_dem(noisy)).sample(shots, np.random.default_rng(1))
        assert np.allclose(
            frame.detectors.mean(axis=0), demb.detectors.mean(axis=0), atol=5e-3
        )

    def test_agreement_for_ldpc_code(self):
        code = load_benchmark_code("lp39")
        noisy = build_noisy(code, coloration_schedule(code), p=2e-3)
        shots = 30_000
        frame = FrameSimulator(noisy).sample(shots, np.random.default_rng(0))
        demb = DemSampler(extract_dem(noisy)).sample(shots, np.random.default_rng(1))
        assert np.allclose(
            frame.detectors.mean(axis=0), demb.detectors.mean(axis=0), atol=6e-3
        )

    def test_noiseless_circuit_all_zero(self):
        code = rotated_surface_code(3)
        exp = build_memory_experiment(code, nz_schedule(code), rounds=2)
        batch = FrameSimulator(exp.circuit).sample(500, np.random.default_rng(0))
        assert not batch.detectors.any()
        assert not batch.observables.any()

    def test_pair_correlations_agree(self):
        """Beyond marginals: two-detector coincidence rates must match."""
        code = rotated_surface_code(3)
        noisy = build_noisy(code, nz_schedule(code), p=5e-3)
        shots = 60_000
        f = FrameSimulator(noisy).sample(shots, np.random.default_rng(0)).detectors
        sampler = DemSampler(extract_dem(noisy))
        d = sampler.sample(shots, np.random.default_rng(1)).detectors
        # Coincidence of the first 8 detectors pairwise.
        for i in range(4):
            for j in range(i + 1, 8):
                cf = (f[:, i] & f[:, j]).mean()
                cd = (d[:, i] & d[:, j]).mean()
                assert cf == pytest.approx(cd, abs=3e-3)
