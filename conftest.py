"""Repo-wide pytest plumbing: hypothesis profiles and golden files.

Hypothesis profiles
    ``dev`` (default) keeps property tests fast locally; ``ci`` runs
    more examples with a fixed derandomized seed so the CI litmus job is
    both thorough and reproducible.  Select with
    ``HYPOTHESIS_PROFILE=ci pytest ...``.

Golden files
    Snapshot tests (``tests/test_golden.py``) compare rendered tables /
    export rows against files under ``tests/golden/``.  After an
    intentional output change, refresh with::

        pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    # Hypothesis's own default example count: registering a default
    # profile must not quietly weaken the pre-existing property tests.
    max_examples=100,
    deadline=None,
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

GOLDEN_DIR = Path(__file__).parent / "tests" / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ snapshots from current outputs "
        "instead of comparing against them",
    )


class Golden:
    """Compare-or-update helper bound to one test run."""

    def __init__(self, update: bool):
        self.update = update

    def check(self, name: str, text: str) -> None:
        """Assert ``text`` matches the named snapshot (or rewrite it)."""
        path = GOLDEN_DIR / name
        if self.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            return
        if not path.exists():
            raise AssertionError(
                f"golden file {path} missing - generate it with "
                "pytest tests/test_golden.py --update-golden"
            )
        expected = path.read_text(encoding="utf-8")
        assert text == expected, (
            f"output diverged from {path.name}; if the change is "
            "intentional, refresh with pytest tests/test_golden.py "
            "--update-golden"
        )


@pytest.fixture
def golden(request) -> Golden:
    return Golden(update=request.config.getoption("--update-golden"))
