"""CI gate for the distributed campaign service.

Runs the built-in smoke campaign twice:

* store A — single-process :func:`repro.experiments.campaign.run_campaign`;
* store B — served through the lease protocol with real worker
  *processes*: one chaos worker that hard-exits after its first job
  (leaving its lease dangling), then two racing workers that finish the
  queue, taking the dead worker's group over once the lease expires.

The fleet's workers run with ``REPRO_OBS=on`` — full span tracing,
metrics, and heartbeats — while the single-process reference stays
uninstrumented.  Both stores are then compacted and every shard file
byte-compared.  Any divergence — ordering, provenance leaking into
results, *telemetry* leaking into results, a job skipped or doubled
with different bytes — fails the gate.  The fleet's trace sidecars are
finally merged into one Chrome ``trace_event`` JSON (uploaded as a CI
artifact) and must contain span events.

Usage: PYTHONPATH=src python scripts/service_smoke.py [workdir]
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.campaign import run_campaign, smoke_spec  # noqa: E402
from repro.experiments.service import write_queue  # noqa: E402
from repro.experiments.store import ResultStore  # noqa: E402
from repro.obs.dashboard import render_telemetry, telemetry_dir_of  # noqa: E402
from repro.obs.trace import write_chrome_trace  # noqa: E402


def spawn_worker(store: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    # Workers run fully instrumented; the byte-compare below is the
    # "telemetry never touches results" contract under real processes.
    env["REPRO_OBS"] = "on"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "worker",
            "--store",
            store,
            "--poll",
            "0.05",
            *extra,
        ],
        env=env,
    )


def shard_bytes(path: str) -> dict[str, bytes]:
    out = {}
    for name in sorted(os.listdir(path)):
        if name.startswith("results") and name.endswith(".jsonl"):
            with open(os.path.join(path, name), "rb") as fh:
                out[name] = fh.read()
    return out


def main(workdir: str) -> int:
    spec = smoke_spec()
    single = os.path.join(workdir, "single")
    fleet = os.path.join(workdir, "fleet")

    print("== single-process reference ==")
    run_campaign(spec, store=single, progress=print)

    print("== distributed run: chaos worker + 2 racing workers ==")
    write_queue(fleet, spec.expand(), name=spec.name)
    chaos = spawn_worker(fleet, "--ttl", "1", "--chaos-exit-after", "1")
    code = chaos.wait(timeout=300)
    if code != 42:
        print(f"FAIL: chaos worker exited {code}, expected hard-exit 42")
        return 1
    print("chaos worker died holding its lease (as designed)")
    workers = [
        spawn_worker(fleet, "--ttl", "2", "--timeout", "240", "--worker-id", f"w{i}")
        for i in range(2)
    ]
    for proc in workers:
        if proc.wait(timeout=300) != 0:
            print("FAIL: worker exited nonzero")
            return 1

    a = ResultStore(single)
    b = ResultStore(fleet)
    print(f"records: single={len(a)} fleet={len(b)}")
    if sorted(a.keys()) != sorted(b.keys()):
        print("FAIL: stores hold different job keys")
        return 1
    if a.content_digest() != b.content_digest():
        print("FAIL: content digests differ before compaction")
        return 1
    a.compact()
    b.compact()
    sa, sb = shard_bytes(single), shard_bytes(fleet)
    if sa != sb:
        print(f"FAIL: compacted shards differ: {sorted(sa)} vs {sorted(sb)}")
        return 1
    print(f"OK: {len(a)} records, {len(sa)} shards, byte-identical stores")
    print(f"content digest: {a.content_digest()}")

    print("== fleet telemetry (workers ran REPRO_OBS=on) ==")
    for line in render_telemetry(fleet):
        print(line)
    trace_out = os.path.join(workdir, "fleet-trace.json")
    events = write_chrome_trace(telemetry_dir_of(fleet), trace_out)
    if events == 0:
        print("FAIL: instrumented fleet left no span records")
        return 1
    print(f"chrome trace: {events} span events -> {trace_out}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1:
        os.makedirs(sys.argv[1], exist_ok=True)
        sys.exit(main(sys.argv[1]))
    with tempfile.TemporaryDirectory() as td:
        sys.exit(main(td))
