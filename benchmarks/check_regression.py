"""Benchmark regression gate for CI.

Compares a pytest-benchmark JSON run against the checked-in baseline
(``benchmarks/baseline.json``) and fails when any shared benchmark's
min time regressed by more than ``--max-regression`` (default 30%).

Usage::

    # gate a run (exits 1 on regression)
    python benchmarks/check_regression.py bench.json benchmarks/baseline.json

    # refresh the baseline from a run (after an intentional change)
    python benchmarks/check_regression.py bench.json benchmarks/baseline.json --update

The baseline stores per-benchmark min times from a reference machine, so
it must be refreshed from the same runner class CI uses (``--update``).
For intentional perf changes, either refresh the baseline in the same PR
or apply the ``bench-override`` label, which skips the gate for that PR
(see .github/workflows/ci.yml).  Benchmarks present in only one of the
two files are reported but never fail the gate, so adding or retiring
benchmarks does not require lockstep baseline edits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_min_times(path: Path) -> dict[str, float]:
    """Map benchmark name -> min seconds, from either file format.

    Keys starting with ``_`` (e.g. the baseline's ``_meta`` provenance
    block) are metadata, not benchmarks.

    Besides each benchmark's min wall time, any numeric ``extra_info``
    entry whose key ends in ``_s`` is ingested as a pseudo-benchmark
    named ``<fullname>::<key>`` — how the streaming benches put their
    per-round latency quantiles (p50/p99) under the same regression
    rule as plain timings.
    """
    data = json.loads(path.read_text())
    if "benchmarks" in data:  # raw pytest-benchmark output
        times: dict[str, float] = {}
        for bench in data["benchmarks"]:
            times[bench["fullname"]] = float(bench["stats"]["min"])
            for key, value in (bench.get("extra_info") or {}).items():
                if (
                    key.endswith("_s")
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                ):
                    times[f"{bench['fullname']}::{key}"] = float(value)
        return times
    return {
        name: float(seconds)
        for name, seconds in data.items()
        if not name.startswith("_")
    }


def compare(
    current: dict[str, float], baseline: dict[str, float], max_regression: float
) -> list[str]:
    """Regression messages for every shared benchmark over the limit."""
    failures = []
    for name in sorted(set(current) & set(baseline)):
        base = baseline[name]
        now = current[name]
        if base <= 0:
            continue
        change = (now - base) / base
        marker = "FAIL" if change > max_regression else "ok"
        print(
            f"  [{marker}] {name}: {base * 1e3:.2f} ms -> {now * 1e3:.2f} ms "
            f"({change:+.1%})"
        )
        if change > max_regression:
            failures.append(
                f"{name} regressed {change:+.1%} "
                f"(limit {max_regression:+.1%})"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"  [new] {name}: {current[name] * 1e3:.2f} ms (not in baseline)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  [missing] {name}: in baseline but not in this run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON of this run")
    parser.add_argument("baseline", type=Path, help="checked-in baseline JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum allowed fractional min-time increase (default 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run instead of gating",
    )
    args = parser.parse_args(argv)

    current = load_min_times(args.current)
    if args.update:
        payload: dict[str, object] = {
            "_meta": {
                "note": "min seconds per benchmark; refresh from the CI "
                "runner class the gate compares against (bench-results "
                "artifact), not a dev machine",
            }
        }
        payload.update(dict(sorted(current.items())))
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline updated with {len(current)} benchmarks -> {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create one")
        return 1
    baseline = load_min_times(args.baseline)
    print(f"comparing {len(current)} benchmarks against {args.baseline}:")
    failures = compare(current, baseline, args.max_regression)
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "\nIf this change is intentional, refresh benchmarks/baseline.json "
            "(--update) or apply the 'bench-override' PR label."
        )
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
