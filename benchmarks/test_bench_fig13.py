"""Bench: Figure 13 — robustness over random coloration starts."""

from repro.experiments import fig13_random_starts


def test_fig13_random_starts(experiment):
    result = experiment(
        fig13_random_starts.run,
        code_name="surface_d3",
        num_starts=3,
        p=3e-3,
        shots=6000,
        iterations=3,
        samples=24,
    )
    assert len(result.rows) == 3
    improved = [r for r in result.rows if r["end_rate"] <= r["start_rate"] * 1.15]
    # Consistent improvement: allow one noisy outlier at bench shot counts.
    assert len(improved) >= 2, result.format_table()
