"""Warm vs cold persistent syndrome cache on the LER hot loop.

Companion to ``test_bench_decoders.py``: the same surface_d5 loop
(:func:`repro.experiments.shotrunner.run_shot_chunks`, packed path),
now with a :class:`repro.decoders.syncache.SyndromeCache` attached.
The cold run decodes every distinct syndrome and pays the append cost;
the warm run reloads the cache file and serves every unique syndrome
from the map, so it times sampling + unique-grouping + lookup with the
decoder almost entirely idle.

Two operating points:

* ``p=1e-3`` — the exact loop ``test_ler_packed_surface_d5`` times, so
  its warm number reads directly against that baseline.json entry (the
  cache PR's acceptance bar: warm >= 2x the pre-PR 0.243s baseline, and
  the cold/cacheless numbers must not regress).
* ``p=3e-3`` — decode-heavy (defect weights high enough that matching
  dominates sampling), where the warm/cold ratio is large and stable;
  this pair carries the in-suite ratio guard (soft 1.5x bound; measured
  ~4x locally — see CHANGES.md) so CI noise cannot flake it.

Caching must never change results: failure counts are asserted
identical across uncached, cold, and warm runs.
"""

import shutil

import numpy as np
import pytest

from repro.circuits import nz_schedule
from repro.codes import load_benchmark_code
from repro.decoders.metrics import dem_for
from repro.experiments.shotrunner import run_shot_chunks
from repro.noise import NoiseModel

SURFACE_SHOTS = 100_000

# min-time results stashed by the benchmarks, compared by the final test.
_RESULTS: dict[str, float] = {}


def _surface_dem(p):
    code = load_benchmark_code("surface_d5")
    return dem_for(code, nz_schedule(code), NoiseModel(p=p), basis="z")


@pytest.fixture(scope="module")
def dem_lowp():
    return _surface_dem(1e-3)


@pytest.fixture(scope="module")
def dem_highp():
    return _surface_dem(3e-3)


def _ler_loop(dem, cache_dir, shots=SURFACE_SHOTS):
    return run_shot_chunks(
        dem,
        shots,
        basis="z",
        rng=np.random.default_rng(0),
        chunk_size=20_000,
        syndrome_cache_dir=None if cache_dir is None else str(cache_dir),
    )


def _record(name, benchmark):
    stats = getattr(benchmark, "stats", None)
    if stats is not None and getattr(stats, "stats", None) is not None:
        _RESULTS[name] = stats.stats.min


def _bench_cold(benchmark, dem, tmp_path):
    cache_dir = tmp_path / "syn"

    def _setup():
        shutil.rmtree(cache_dir, ignore_errors=True)
        return (dem, cache_dir), {}

    est = benchmark.pedantic(_ler_loop, setup=_setup, rounds=3, iterations=1)
    assert est.shots == SURFACE_SHOTS
    return est


def _bench_warm(benchmark, dem, tmp_path):
    cache_dir = tmp_path / "syn"
    reference = _ler_loop(dem, cache_dir)  # prewarm
    est = benchmark.pedantic(
        lambda: _ler_loop(dem, cache_dir), rounds=3, iterations=1
    )
    assert (est.failures, est.shots) == (reference.failures, reference.shots)
    return est


@pytest.mark.benchmark(group="ler-syncache-surface_d5")
def test_ler_syncache_cold_surface_d5(benchmark, dem_lowp, tmp_path):
    """Cold cache at the headline operating point: full decode plus the
    append overhead — the gate that caching never slows a first run."""
    _bench_cold(benchmark, dem_lowp, tmp_path)
    _record("cold", benchmark)


@pytest.mark.benchmark(group="ler-syncache-surface_d5")
def test_ler_syncache_warm_surface_d5(benchmark, dem_lowp, tmp_path):
    """Warm cache: every distinct syndrome served from disk.  Each
    round builds a fresh decoder and reloads the cache file, so load
    cost is inside the measurement.  Compare against the
    ``test_ler_packed_surface_d5`` baseline entry."""
    _bench_warm(benchmark, dem_lowp, tmp_path)
    _record("warm", benchmark)


@pytest.mark.benchmark(group="ler-syncache-surface_d5-highp")
def test_ler_syncache_cold_surface_d5_highp(benchmark, dem_highp, tmp_path):
    _bench_cold(benchmark, dem_highp, tmp_path)
    _record("cold-highp", benchmark)


@pytest.mark.benchmark(group="ler-syncache-surface_d5-highp")
def test_ler_syncache_warm_surface_d5_highp(benchmark, dem_highp, tmp_path):
    _bench_warm(benchmark, dem_highp, tmp_path)
    _record("warm-highp", benchmark)


def test_warm_cache_beats_cold(dem_highp, tmp_path):
    """Guard: in the decode-dominated regime a warm cache must clearly
    beat a cold one (recorded speedup lives in CHANGES.md; 1.5x here
    absorbs CI noise), and caching must not change a single counted
    failure."""
    if "warm-highp" not in _RESULTS or "cold-highp" not in _RESULTS:
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    ratio = _RESULTS["cold-highp"] / _RESULTS["warm-highp"]
    assert ratio >= 1.5, f"warm-cache speedup degraded: {ratio:.2f}x"
    # Same estimator with the cache absent, cold, or warm.
    runs = [
        _ler_loop(dem_highp, None, shots=20_000),
        _ler_loop(dem_highp, tmp_path / "syn2", shots=20_000),
        _ler_loop(dem_highp, tmp_path / "syn2", shots=20_000),
    ]
    assert len({(r.failures, r.shots) for r in runs}) == 1
