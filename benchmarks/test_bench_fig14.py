"""Bench: Figure 14 — subgraph solve scaling with d_eff."""

from repro.experiments import fig14_scaling


def test_fig14_scaling(experiment):
    result = experiment(
        fig14_scaling.run,
        codes=("surface_d3", "surface_d5"),
        samples_per_code=15,
    )
    assert result.rows
    # Model size should grow with the weight of the logical error found.
    by_code = {}
    for row in result.rows:
        by_code.setdefault(row["code"], []).append(row)
    for code, rows in by_code.items():
        rows.sort(key=lambda r: r["deff_weight"])
        if len(rows) >= 2:
            assert rows[-1]["mean_variables"] >= rows[0]["mean_variables"]
