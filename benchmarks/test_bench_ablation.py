"""Bench: ablations of PropHunt's design choices (see DESIGN.md)."""

from repro.experiments import ablations


def test_ablation_change_types(experiment):
    result = experiment(ablations.run_change_types, iterations=3, samples=20)
    rows = {r["mode"]: r for r in result.rows}
    assert set(rows) == {"both", "reorder-only", "reschedule-only"}
    # Using both change types must not be worse than the best single type
    # by more than noise.
    best_single = min(
        rows["reorder-only"]["final_rate"], rows["reschedule-only"]["final_rate"]
    )
    assert rows["both"]["final_rate"] <= best_single * 1.6


def test_ablation_solver_backends(experiment):
    result = experiment(ablations.run_solver_backends, samples=8)
    rows = {r["method"]: r for r in result.rows}
    # ISD and MaxSAT always solve; they must agree on the mean weight
    # (both exact on these small subgraphs).
    assert rows["isd"]["mean_weight"] == rows["maxsat"]["mean_weight"]
    # The graph-like exact solver, when applicable, is the fastest path.
    assert rows["graphlike"]["mean_time_s"] < rows["maxsat"]["mean_time_s"]


def test_ablation_flags_vs_prophunt(experiment):
    result = experiment(ablations.run_flags_vs_prophunt, shots=5000)
    rows = {r["approach"]: r for r in result.rows}
    baseline = rows["poor schedule (baseline)"]
    # Both remedies beat the broken baseline...
    assert rows["prophunt"]["logical_error_rate"] < baseline["logical_error_rate"]
    flagged = rows["poor + flag qubits"]
    assert flagged["logical_error_rate"] < baseline["logical_error_rate"]
    # ...but only flags pay in qubits.
    assert rows["poor + flag qubits"]["qubits"] > rows["prophunt"]["qubits"]
