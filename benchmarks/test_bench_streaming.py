"""Streaming sliding-window decode latency on surface_d5.

The offline benches ask "seconds per 100k shots"; these ask the serving
question — per-*round* latency when syndromes arrive incrementally and
the :class:`repro.streaming.window.WindowedDecoder` commits as the
window slides.  Wall time of the whole stream rides the usual min-time
gate; the per-round p50/p99 latency quantiles are stashed in
``benchmark.extra_info`` (keys ending ``_s``), which
``check_regression.py`` ingests as ``<fullname>::<key>``
pseudo-benchmarks under the same >30% regression rule.

Correctness is asserted out-of-band: one verified run
(``verify_offline=True``) pins the committed corrections bit-identical
to offline ``decode_batch_packed`` before the timed runs (which switch
verification off so the gate times the streaming leg alone).
"""

import numpy as np
import pytest

from repro.circuits import nz_schedule
from repro.codes import load_benchmark_code
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.streaming import WindowConfig, stream_decode

SHOTS = 4096


@pytest.fixture(scope="module")
def surface_dem():
    code = load_benchmark_code("surface_d5")
    return dem_for(code, nz_schedule(code), NoiseModel(p=1e-3), basis="z")


def _bench_stream(benchmark, dem, window, quantiles=("p50", "p99")):
    verified = stream_decode(
        dem,
        SHOTS,
        window=window,
        rng=np.random.default_rng(0),
        verify_offline=True,
    )
    assert verified.matches_offline is True

    reports = []

    def _run():
        report = stream_decode(
            dem,
            SHOTS,
            window=window,
            rng=np.random.default_rng(0),
            verify_offline=False,
        )
        reports.append(report)
        return report

    benchmark.pedantic(_run, rounds=3, iterations=1)
    assert all(r.failures == verified.failures for r in reports)
    # Best-of-rounds quantiles, same spirit as the min wall time the
    # gate already compares.
    for q in quantiles:
        key = f"{q}_round_s"
        benchmark.extra_info[key] = min(getattr(r, key) for r in reports)


@pytest.mark.benchmark(group="stream-surface_d5")
def test_stream_w3c1_surface_d5(benchmark, surface_dem):
    """The headline serving schedule: window 3, commit every round —
    the small-batch regime where per-commit decode latency dominates."""
    _bench_stream(benchmark, surface_dem, WindowConfig(3, 1))


@pytest.mark.benchmark(group="stream-surface_d5")
def test_stream_w4c4_surface_d5(benchmark, surface_dem):
    """Chunky commits: window 4, commit 4 at once — fewer, larger
    decode calls; the throughput end of the window/commit trade.  Most
    rounds here are a bare row copy (microseconds), so only the
    commit-dominated p99 is gated — a median of noise would flake."""
    _bench_stream(benchmark, surface_dem, WindowConfig(4, 4), quantiles=("p99",))
