"""Packed vs dense decoding on the LER hot loop.

Companion to ``test_bench_sampler.py``: where that file benchmarks the
sampling kernel, this one benchmarks the full sample→decode→count loop
(:func:`repro.experiments.shotrunner.run_shot_chunks`) with the packed
unique-syndrome-batching decode path against the pinned dense reference
(``dense_reference=True``, i.e. unpack + per-shot ``decode_batch``).
Both paths are the same estimator — identical failure counts — so the
comparison is pure decode-representation cost.

Acceptance bar from the packed-decoding PR: packed >= 2x faster on
surface_d5 at 100k shots (see CHANGES.md for recorded numbers).  The
in-suite assertion uses a softer 1.3x bound so noisy CI machines do not
flake; the CI benchmark-regression gate tracks the absolute numbers
against ``benchmarks/baseline.json``.
"""

import numpy as np
import pytest

from repro.circuits import coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code
from repro.decoders.metrics import dem_for
from repro.experiments.shotrunner import run_shot_chunks
from repro.noise import NoiseModel

SURFACE_SHOTS = 100_000
BPOSD_SHOTS = 10_000

# min-time results stashed by the benchmarks, compared by the final test.
_RESULTS: dict[str, float] = {}


def _dem(name: str, p: float, rounds=None):
    code = load_benchmark_code(name)
    sched = (
        nz_schedule(code) if name.startswith("surface") else coloration_schedule(code)
    )
    return dem_for(code, sched, NoiseModel(p=p), basis="z", rounds=rounds)


@pytest.fixture(scope="module")
def surface_d5_dem():
    return _dem("surface_d5", 1e-3)


@pytest.fixture(scope="module")
def lp39_dem():
    return _dem("lp39", 5e-4, rounds=2)


def _ler_loop(dem, shots, dense_reference):
    return run_shot_chunks(
        dem,
        shots,
        basis="z",
        rng=np.random.default_rng(0),
        chunk_size=20_000,
        dense_reference=dense_reference,
    )


def _record(name, benchmark):
    stats = getattr(benchmark, "stats", None)
    if stats is not None and getattr(stats, "stats", None) is not None:
        _RESULTS[name] = stats.stats.min


@pytest.mark.benchmark(group="ler-surface_d5")
def test_ler_packed_surface_d5(benchmark, surface_d5_dem):
    est = benchmark.pedantic(
        lambda: _ler_loop(surface_d5_dem, SURFACE_SHOTS, False),
        rounds=3,
        iterations=1,
    )
    assert est.shots == SURFACE_SHOTS
    _record("packed", benchmark)


@pytest.mark.benchmark(group="ler-surface_d5")
def test_ler_dense_surface_d5(benchmark, surface_d5_dem):
    est = benchmark.pedantic(
        lambda: _ler_loop(surface_d5_dem, SURFACE_SHOTS, True),
        rounds=3,
        iterations=1,
    )
    assert est.shots == SURFACE_SHOTS
    _record("dense", benchmark)


@pytest.mark.benchmark(group="ler-lp39")
def test_ler_packed_lp39(benchmark, lp39_dem):
    """BP+OSD packed path; BP dominates, so this tracks absolute cost
    rather than a packed/dense ratio (the dense run would double the
    benchmark's wall time for the same BP work)."""
    est = benchmark.pedantic(
        lambda: _ler_loop(lp39_dem, BPOSD_SHOTS, False),
        rounds=1,
        iterations=1,
    )
    assert est.shots == BPOSD_SHOTS
    _record("lp39-packed", benchmark)


def test_packed_beats_dense_surface_d5(surface_d5_dem):
    """Guard: the packed LER loop must clearly beat the dense reference
    (recorded speedup lives in CHANGES.md; 1.3x here absorbs CI noise)."""
    if "packed" not in _RESULTS or "dense" not in _RESULTS:
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    ratio = _RESULTS["dense"] / _RESULTS["packed"]
    assert ratio >= 1.3, f"packed speedup degraded: {ratio:.2f}x"
    # Identical estimator: same failures either way.
    packed = _ler_loop(surface_d5_dem, 20_000, False)
    dense = _ler_loop(surface_d5_dem, 20_000, True)
    assert (packed.failures, packed.shots) == (dense.failures, dense.shots)
