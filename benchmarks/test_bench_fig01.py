"""Bench: Figure 1 — depth and d_eff are imperfect LER predictors."""

from repro.experiments import fig01_predictors


def test_fig01_predictors(experiment):
    result = experiment(
        fig01_predictors.run, d=5, p=3e-3, shots=4000, deff_samples=20
    )
    rows = {r["schedule"]: r for r in result.rows}
    good = rows["nz (hand, depth-min)"]
    poor = rows["poor (depth-min)"]
    # (a) equal depth, different LER: depth alone does not predict.
    assert good["cnot_depth"] == poor["cnot_depth"]
    assert poor["logical_error_rate"] > 1.5 * good["logical_error_rate"]
    # (b) the poor schedule's d_eff is reduced below d.
    assert poor["deff"] < 5
    assert good["deff"] == 5
