"""Rare-event estimator vs direct Monte Carlo on surface_d5 at p=5e-4.

The acceptance bar for the rare-event subsystem: at a deep
sub-threshold operating point the stratified estimator must reach a
confidence-interval half-width of <= 10% of the estimate while
decoding >= 100x fewer shots than direct Monte Carlo would need for
the same interval (normal-approximation shot count at the measured
rate).  The direct-MC reference arm runs the *same decoded-shot
budget* through the packed chunk runner to show what that budget buys
without stratification — at this operating point it resolves nothing
(the expected failure count over the whole budget is ~2).
"""

import numpy as np
import pytest

from repro.circuits import nz_schedule
from repro.codes import load_benchmark_code
from repro.decoders.metrics import dem_for
from repro.experiments.shotrunner import run_shot_chunks
from repro.noise import NoiseModel
from repro.rareevent import estimate_ler_stratified

P = 5e-4
MAX_SHOTS = 2_000_000


@pytest.fixture(scope="module")
def d5_dem():
    code = load_benchmark_code("surface_d5")
    return dem_for(code, nz_schedule(code), NoiseModel(p=P), basis="z")


@pytest.fixture(scope="module")
def stratified(d5_dem):
    """One stratified run shared by the benchmark and the reference arm."""
    return estimate_ler_stratified(
        d5_dem,
        rng=np.random.default_rng(0),
        min_failure_weight=3,  # ceil(d/2) on the unambiguous N-Z schedule
        target_rel_halfwidth=0.1,
        max_shots=MAX_SHOTS,
    )


@pytest.mark.benchmark(group="rareevent-surface_d5")
def test_stratified_surface_d5_lowp(benchmark, d5_dem):
    est = benchmark.pedantic(
        lambda: estimate_ler_stratified(
            d5_dem,
            rng=np.random.default_rng(0),
            min_failure_weight=3,
            target_rel_halfwidth=0.1,
            max_shots=MAX_SHOTS,
        ),
        rounds=1,
        iterations=1,
    )
    assert est.converged
    assert est.halfwidth <= 0.1 * est.rate * 1.0001
    ratio = est.direct_mc_shots_for_same_ci() / est.shots
    print(
        f"\nLER={est.rate:.3e} +/- {est.halfwidth:.1e} with "
        f"{est.shots} decoded shots; direct MC would need "
        f"{est.direct_mc_shots_for_same_ci():.2e} ({ratio:.0f}x more)"
    )
    assert ratio >= 100, f"rare-event speedup only {ratio:.1f}x"


@pytest.mark.benchmark(group="rareevent-surface_d5")
def test_direct_reference_surface_d5_lowp(benchmark, d5_dem, stratified):
    """Direct MC on the same decoded-shot budget, for the time/width contrast."""
    budget = stratified.shots
    direct = benchmark.pedantic(
        lambda: run_shot_chunks(
            d5_dem, shots=budget, rng=np.random.default_rng(1), chunk_size=50_000
        ),
        rounds=1,
        iterations=1,
    )
    assert direct.shots == budget
    d_lo, d_hi = direct.interval
    print(
        f"\ndirect MC at the same budget: {direct.failures} failures in "
        f"{direct.shots} shots, CI [{d_lo:.1e}, {d_hi:.1e}]"
    )
    # The whole point: the same budget spent directly cannot resolve the
    # rate — its interval is far wider than the stratified one.
    assert (d_hi - d_lo) > 5 * (stratified.interval[1] - stratified.interval[0])