"""Bench: Table 1 — the benchmark code suite parameters."""

from repro.experiments import table1_codes


def test_table1_code_suite(experiment):
    result = experiment(table1_codes.run, distance_iterations=80)
    assert all(row["match"] for row in result.rows), result.format_table()
