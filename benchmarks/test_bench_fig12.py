"""Bench: Figure 12 — PropHunt vs coloration vs hand-designed circuits.

The paper's main result.  Laptop-scale budgets: two codes by default,
short optimization runs, modest shot counts.  For the full suite run

    python -m repro.experiments.runner fig12 --full

(see EXPERIMENTS.md for paper-scale parameters and recorded outputs).
"""

from repro.experiments import fig12_benchmarks
from repro.experiments.fig12_benchmarks import improvement_factors


def test_fig12_surface_code_recovery(experiment):
    """PropHunt must recover hand-designed surface-code performance."""
    result = experiment(
        fig12_benchmarks.run,
        codes=("surface_d3",),
        p_values=(3e-3,),
        shots=8000,
    )
    rows = {(r["circuit"]): r["logical_error_rate"] for r in result.rows}
    assert rows["prophunt"] <= rows["coloration"] * 1.1
    # Within noise of the hand-designed circuit (factor 2 tolerance at
    # these shot counts).
    assert rows["prophunt"] <= rows["hand-designed"] * 2.0


def test_fig12_lp_code_improvement(experiment):
    """PropHunt must not hurt the LP code's coloration circuit (paper:
    2.5-4x improvement at p=0.1% with full budgets; at bench-scale
    budgets the true improvement is small, and with ~70 failures per
    rate the ratio carries ~15-20% sampling noise, so only a clear
    regression fails)."""
    result = experiment(
        fig12_benchmarks.run,
        codes=("lp39",),
        p_values=(1e-3,),
        shots=4000,
        iterations=3,
        samples=24,
    )
    factors = improvement_factors(result)
    assert factors, "no improvement factors computed"
    for (code, p), factor in factors.items():
        assert factor >= 0.7, f"{code} at p={p} regressed: {factor:.2f}x"
