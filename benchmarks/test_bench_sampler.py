"""Packed vs dense shot sampling at 100k shots.

Unlike the other benchmark files (end-to-end experiment drivers), this
one microbenchmarks the hot kernel the whole evaluation pipeline sits
on: one ``DemSampler`` batch of 100 000 shots, packed
(``sample_packed``, the production path) vs dense (``sample_dense``,
the seed implementation kept as reference).  The two consume the RNG
identically, so the comparison is pure representation cost.  Acceptance
bar from the packed-pipeline PR: packed >= 3x faster on surface_d5
(see CHANGES.md for recorded numbers).
"""

import numpy as np
import pytest

from repro.circuits import coloration_schedule, nz_schedule
from repro.codes import load_benchmark_code
from repro.decoders.metrics import dem_for
from repro.noise import NoiseModel
from repro.sim import DemSampler

SHOTS = 100_000


def _sampler(name: str) -> DemSampler:
    code = load_benchmark_code(name)
    sched = (
        nz_schedule(code) if name.startswith("surface") else coloration_schedule(code)
    )
    return DemSampler(dem_for(code, sched, NoiseModel(p=1e-3), basis="z"))


@pytest.fixture(scope="module")
def surface_d5():
    return _sampler("surface_d5")


@pytest.fixture(scope="module")
def lp39():
    return _sampler("lp39")


@pytest.mark.benchmark(group="sampler-surface_d5")
def test_packed_surface_d5(benchmark, surface_d5):
    batch = benchmark.pedantic(
        lambda: surface_d5.sample_packed(SHOTS, np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    assert batch.shots == SHOTS


@pytest.mark.benchmark(group="sampler-surface_d5")
def test_dense_surface_d5(benchmark, surface_d5):
    batch = benchmark.pedantic(
        lambda: surface_d5.sample_dense(SHOTS, np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    assert batch.shots == SHOTS


@pytest.mark.benchmark(group="sampler-lp39")
def test_packed_lp39(benchmark, lp39):
    batch = benchmark.pedantic(
        lambda: lp39.sample_packed(SHOTS, np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    assert batch.shots == SHOTS


@pytest.mark.benchmark(group="sampler-lp39")
def test_dense_lp39(benchmark, lp39):
    batch = benchmark.pedantic(
        lambda: lp39.sample_dense(SHOTS, np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    assert batch.shots == SHOTS
