"""Bench: Table 2 — MaxSAT model sizes, global vs subgraph."""

from repro.experiments import table2_models


def test_table2_model_sizes(experiment):
    result = experiment(
        table2_models.run,
        codes=("lp39", "surface_d7", "rqt60"),
        global_timeout=4.0,
    )
    by_form = {}
    for row in result.rows:
        by_form.setdefault(row["formulation"], []).append(row)
    assert len(by_form["global"]) == 3
    for g in by_form["global"]:
        subs = [s for s in by_form["subgraph"] if s["code"] == g["code"]]
        assert subs, f"missing subgraph row for {g['code']}"
        s = subs[0]
        # The paper's point: orders-of-magnitude smaller models.
        assert s["variables"] * 20 < g["variables"]
        assert s["hard_clauses"] * 20 < g["hard_clauses"]
        assert s["status"] == "optimal"
