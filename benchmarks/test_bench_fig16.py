"""Bench: Figure 16 — Hook-ZNE amplification range and bias vs DS-ZNE."""

from repro.experiments import fig16_zne


def test_fig16a_amplification(experiment):
    result = experiment(fig16_zne.run_amplification, d=11)
    rows = sorted(result.rows, key=lambda r: r["suppression_lambda"])
    # Larger Lambda -> wider amplification range at fixed d.
    amps = [r["max_amplification"] for r in rows]
    assert amps == sorted(amps)
    assert all(r["min_amplification"] == 1.0 for r in rows)


def test_fig16b_bias(experiment):
    result = experiment(fig16_zne.run_bias, lam=2.0, trials=40)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["hook_zne_bias"] < row["ds_zne_bias"], result.format_table()
    # Headline: 3x-6x better in the paper; require >=2x on the two
    # well-conditioned ranges at bench trial counts.
    assert result.rows[0]["improvement"] >= 2.0
    assert result.rows[1]["improvement"] >= 2.0
