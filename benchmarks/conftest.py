"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at
laptop scale and prints the rows it produced (compare against
EXPERIMENTS.md).  Benchmarks run each experiment exactly once —
they are end-to-end experiment drivers, not microbenchmarks.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def experiment(benchmark):
    def _run(fn, *args, **kwargs):
        result = run_once(benchmark, fn, *args, **kwargs)
        if hasattr(result, "print"):
            print()
            result.print()
        return result

    return _run
