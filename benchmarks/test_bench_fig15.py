"""Bench: Figure 15 — idle-error sensitivity study."""

from repro.experiments import fig15_idle


def test_fig15_idle_sensitivity(experiment):
    result = experiment(
        fig15_idle.run,
        code_name="surface_d3",
        idle_strengths=(0.0, 1e-3, 1e-2),
        shots=5000,
    )
    by_circuit = {}
    for row in result.rows:
        by_circuit.setdefault(row["circuit"], []).append(row)
    # Idle noise must hurt every circuit monotonically-in-aggregate.
    for circuit, rows in by_circuit.items():
        rows.sort(key=lambda r: r["idle_strength"])
        assert rows[-1]["logical_error_rate"] >= rows[0]["logical_error_rate"]
    # At realistic idle strengths the good shallow circuit beats the poor
    # shallow circuit (quality dominates depth — the paper's conclusion).
    for strength_rows in zip(*(by_circuit[c] for c in by_circuit)):
        rates = {r["circuit"]: r["logical_error_rate"] for r in strength_rows}
        good = rates.get("good (depth 4)")
        if good is not None and strength_rows[0]["idle_strength"] <= 1e-3:
            assert rates["good (depth 4)"] <= rates["poor (depth 4)"] * 1.2
