"""Bench: Figure 6 — good vs poor d=3 schedule over a p sweep."""

from repro.experiments import fig06_schedules


def test_fig06_schedule_comparison(experiment):
    result = experiment(
        fig06_schedules.run,
        p_values=(1e-3, 3e-3, 8e-3),
        shots=8000,
    )
    by_key = {(r["schedule"], r["p"]): r["logical_error_rate"] for r in result.rows}
    for p in (1e-3, 3e-3, 8e-3):
        good = by_key[("good (N-Z)", p)]
        poor = by_key[("poor", p)]
        assert poor > good, f"poor schedule should lose at p={p}"
    deffs = {r["schedule"]: r["deff"] for r in result.rows}
    assert deffs["good (N-Z)"] == 3
    assert deffs["poor"] == 2
